(* Tests for Psm_rtl: netlist construction, combinational builders, the
   cycle simulator with toggle counting, and the power model. *)

module Bits = Psm_bits.Bits
module Netlist = Psm_rtl.Netlist
module Comb = Psm_rtl.Comb
module Sim = Psm_rtl.Sim
module Power = Psm_rtl.Power_model

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- netlist basics ---------- *)

let test_counts () =
  let nl = Netlist.create "t" in
  let a = Netlist.input nl "a" 2 in
  let x = Netlist.gate nl Netlist.And [| a.(0); a.(1) |] in
  let q = Netlist.dff nl x in
  Netlist.output nl "q" [| q |];
  check_int "gates" 1 (Netlist.gate_count nl);
  check_int "memory" 1 (Netlist.memory_elements nl);
  Netlist.validate nl

let test_validate_undriven () =
  let nl = Netlist.create "t" in
  let _ = Netlist.input nl "a" 1 in
  let dangling = Netlist.fresh nl in
  ignore dangling;
  Alcotest.(check bool) "undriven rejected" true
    (try
       Netlist.validate nl;
       false
     with Invalid_argument _ -> true)

let test_validate_unconnected_loop () =
  let nl = Netlist.create "t" in
  let _q, _connect = Netlist.dff_loop nl () in
  Alcotest.(check bool) "unconnected dff rejected" true
    (try
       ignore (Netlist.dffs nl);
       false
     with Invalid_argument _ -> true)

let test_const_dedup () =
  let nl = Netlist.create "t" in
  check_int "const false dedup" (Netlist.const nl false) (Netlist.const nl false);
  check_bool "two constants differ" true (Netlist.const nl false <> Netlist.const nl true)

let test_interface_of_netlist () =
  let nl = Netlist.create "t" in
  let a = Netlist.input nl "a" 3 in
  Netlist.output nl "y" [| a.(0) |];
  let iface = Netlist.interface nl in
  check_int "pi" 3 (Psm_trace.Interface.total_input_width iface);
  check_int "po" 1 (Psm_trace.Interface.total_output_width iface)

(* ---------- simulation helpers ---------- *)

let run_comb build inputs =
  (* Build a netlist with the given input widths, apply [build] to get the
     output nets, simulate one cycle, return outputs. *)
  let nl = Netlist.create "comb" in
  let nets = List.map (fun (n, w) -> (n, Netlist.input nl n w)) inputs in
  let outs = build nl (List.map snd nets) in
  Netlist.output nl "y" outs;
  let sim = Sim.create nl in
  fun values ->
    let ins = List.map2 (fun (n, _) v -> (n, v)) inputs values in
    List.assoc "y" (Sim.step sim ins)

let test_adder_exhaustive () =
  let add =
    run_comb
      (fun nl -> function
        | [ a; b ] -> fst (Comb.adder nl a b)
        | _ -> assert false)
      [ ("a", 4); ("b", 4) ]
  in
  for x = 0 to 15 do
    for y = 0 to 15 do
      check_int
        (Printf.sprintf "%d+%d" x y)
        ((x + y) land 0xF)
        (Bits.to_int (add [ Bits.of_int ~width:4 x; Bits.of_int ~width:4 y ]))
    done
  done

let test_subtractor () =
  let sub =
    run_comb
      (fun nl -> function
        | [ a; b ] -> fst (Comb.subtractor nl a b)
        | _ -> assert false)
      [ ("a", 8); ("b", 8) ]
  in
  List.iter
    (fun (x, y) ->
      check_int
        (Printf.sprintf "%d-%d" x y)
        ((x - y) land 0xFF)
        (Bits.to_int (sub [ Bits.of_int ~width:8 x; Bits.of_int ~width:8 y ])))
    [ (0, 0); (10, 3); (3, 10); (255, 255); (0, 1); (128, 64) ]

let test_multiplier () =
  let mul =
    run_comb
      (fun nl -> function
        | [ a; b ] -> Comb.multiplier nl a b
        | _ -> assert false)
      [ ("a", 6); ("b", 6) ]
  in
  for x = 0 to 63 do
    List.iter
      (fun y ->
        check_int
          (Printf.sprintf "%d*%d" x y)
          (x * y)
          (Bits.to_int (mul [ Bits.of_int ~width:6 x; Bits.of_int ~width:6 y ])))
      [ 0; 1; 5; 33; 63 ]
  done

let test_mux_tree () =
  let pick =
    run_comb
      (fun nl -> function
        | [ sel; a; b; c; d ] -> Comb.mux_tree nl ~sel [| a; b; c; d |]
        | _ -> assert false)
      [ ("sel", 2); ("a", 4); ("b", 4); ("c", 4); ("d", 4) ]
  in
  let ways = [ 0xA; 0xB; 0xC; 0xD ] in
  List.iteri
    (fun idx expect ->
      let inputs =
        Bits.of_int ~width:2 idx :: List.map (Bits.of_int ~width:4) ways
      in
      check_int (Printf.sprintf "way %d" idx) expect (Bits.to_int (pick inputs)))
    ways

let test_decoder () =
  let dec =
    run_comb
      (fun nl -> function
        | [ a ] ->
            let outs = Comb.decoder nl a in
            outs
        | _ -> assert false)
      [ ("a", 3) ]
  in
  for v = 0 to 7 do
    let out = dec [ Bits.of_int ~width:3 v ] in
    check_int (Printf.sprintf "one-hot %d" v) (1 lsl v) (Bits.to_int out)
  done

let test_comparators () =
  let eq =
    run_comb
      (fun nl -> function
        | [ a; b ] -> [| Comb.eq_v nl a b |]
        | _ -> assert false)
      [ ("a", 5); ("b", 5) ]
  in
  check_int "equal" 1
    (Bits.to_int (eq [ Bits.of_int ~width:5 17; Bits.of_int ~width:5 17 ]));
  check_int "unequal" 0
    (Bits.to_int (eq [ Bits.of_int ~width:5 17; Bits.of_int ~width:5 18 ]))

(* ---------- sequential simulation ---------- *)

let test_counter () =
  (* A 4-bit counter built from the adder and a dff loop. *)
  let nl = Netlist.create "counter" in
  let en = Netlist.input nl "en" 1 in
  let q, connect = Netlist.dff_loop_vector nl 4 in
  let one = Comb.const_vector nl (Bits.of_int ~width:4 1) in
  let incremented, _ = Comb.adder nl q one in
  connect (Comb.mux2 nl ~sel:en.(0) q incremented);
  Netlist.output nl "count" q;
  let sim = Sim.create nl in
  let read enabled = List.assoc "count" (Sim.step sim [ ("en", Bits.of_bool enabled) ]) in
  check_int "starts at 0" 0 (Bits.to_int (read true));
  check_int "then 1" 1 (Bits.to_int (read true));
  check_int "then 2" 2 (Bits.to_int (read true));
  check_int "hold" 3 (Bits.to_int (read false));
  check_int "still hold" 3 (Bits.to_int (read false));
  check_int "resumes" 3 (Bits.to_int (read true));
  check_int "counts again" 4 (Bits.to_int (read true))

let test_counter_wraps_and_reset () =
  let nl = Netlist.create "c2" in
  let _unused = Netlist.input nl "en" 1 in
  let q, connect = Netlist.dff_loop_vector nl 2 in
  let one = Comb.const_vector nl (Bits.of_int ~width:2 1) in
  let inc, _ = Comb.adder nl q one in
  connect inc;
  Netlist.output nl "c" q;
  let sim = Sim.create nl in
  let step () = Bits.to_int (List.assoc "c" (Sim.step sim [ ("en", Bits.of_bool true) ])) in
  check_int "0" 0 (step ());
  check_int "1" 1 (step ());
  check_int "2" 2 (step ());
  check_int "3" 3 (step ());
  check_int "wraps" 0 (step ());
  Sim.reset sim;
  check_int "reset" 0 (step ());
  check_int "cycle count" 1 (Sim.cycle sim)

let test_toggle_counting () =
  (* A single inverter driven by an input: toggles are deterministic. *)
  let nl = Netlist.create "inv" in
  let a = Netlist.input nl "a" 1 in
  let y = Netlist.gate nl Netlist.Not [| a.(0) |] in
  Netlist.output nl "y" [| y |];
  let sim = Sim.create nl in
  let step v = ignore (Sim.step sim [ ("a", Bits.of_bool v) ]) in
  step false;
  (* First cycle: y goes 0 -> 1 (prev state was all-false). *)
  check_int "first cycle" 1 (Sim.last_toggles sim);
  step false;
  check_int "stable" 0 (Sim.last_toggles sim);
  step true;
  (* Both a and y toggle. *)
  check_int "both toggle" 2 (Sim.last_toggles sim);
  check_int "total" 3 (Sim.total_toggles sim)

let test_combinational_cycle_detected () =
  let nl = Netlist.create "loop" in
  let a = Netlist.input nl "a" 1 in
  (* Two NANDs cross-coupled combinationally (no DFF). *)
  let n1 = Netlist.fresh nl in
  ignore n1;
  (* Build an actual loop: x = And(a, y); y = Buf x is impossible through
     the builder (gate outputs are fresh); an SR-latch-like loop needs
     dff_loop misused: connect d to a gate of its own q is legal, but a
     *combinational* loop cannot be expressed. Assert the builder prevents
     it by construction: every gate's inputs must already exist. *)
  Alcotest.(check bool) "builder prevents cycles" true
    (try
       let x = Netlist.gate nl Netlist.And [| a.(0); Netlist.net_count nl + 5 |] in
       ignore x;
       false
     with Invalid_argument _ -> true)

let test_sim_input_validation () =
  let nl = Netlist.create "v" in
  let _a = Netlist.input nl "a" 2 in
  let c = Netlist.const nl true in
  Netlist.output nl "y" [| c |];
  let sim = Sim.create nl in
  Alcotest.(check bool) "missing input" true
    (try
       ignore (Sim.step sim []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong width" true
    (try
       ignore (Sim.step sim [ ("a", Bits.zero 3) ]);
       false
     with Invalid_argument _ -> true)

(* ---------- Verilog export ---------- *)

let test_verilog_export_shape () =
  let nl = Netlist.create "demo" in
  let a = Netlist.input nl "a" 2 in
  let x = Netlist.gate nl Netlist.And [| a.(0); a.(1) |] in
  let q = Netlist.dff nl ~init:true x in
  Netlist.output nl "y" [| q |];
  let v = Psm_rtl.Verilog.to_string nl in
  let contains needle =
    let n = String.length needle and h = String.length v in
    let rec go i = i + n <= h && (String.sub v i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle -> check_bool needle true (contains needle))
    [ "module demo(clk, a, y);"; "input [1:0] a;"; "output [0:0] y;";
      "always @(posedge clk)"; "n_3 = 1'b1;" (* dff init *);
      "assign n_2 = n_0 & n_1;"; "n_3 <= n_2;"; "endmodule" ];
  (* Balanced begin/end pairs. *)
  let count needle =
    let n = String.length needle in
    let rec go i acc =
      if i + n > String.length v then acc
      else go (i + 1) (if String.sub v i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  check_int "begin/end balance" (count "begin") (count "  end")

let test_verilog_export_full_ips () =
  (* All four structural netlists export without raising and mention
     their ports. *)
  List.iter
    (fun name ->
      match Psm_ips.Structural.netlist_for name with
      | None -> Alcotest.fail name
      | Some build ->
          let v = Psm_rtl.Verilog.to_string (build ()) in
          check_bool (name ^ " non-trivial") true (String.length v > 10_000))
    [ "RAM"; "MultSum" ]

(* ---------- netlist statistics ---------- *)

let test_stats_known_circuit () =
  (* Two gates in a chain: depth 2; one in parallel: still depth 2. *)
  let nl = Netlist.create "s" in
  let a = Netlist.input nl "a" 2 in
  let x = Netlist.gate nl Netlist.And [| a.(0); a.(1) |] in
  let y = Netlist.gate nl Netlist.Not [| x |] in
  let z = Netlist.gate nl Netlist.Or [| a.(0); a.(1) |] in
  Netlist.output nl "y" [| y |];
  Netlist.output nl "z" [| z |];
  let stats = Psm_rtl.Netlist_stats.analyze nl in
  check_int "gates" 3 stats.Psm_rtl.Netlist_stats.gates_total;
  check_int "depth" 2 stats.Psm_rtl.Netlist_stats.logic_depth;
  check_int "max fanout (a bits feed 2 gates)" 2 stats.Psm_rtl.Netlist_stats.max_fanout;
  let count op =
    Option.value ~default:0
      (List.assoc_opt op stats.Psm_rtl.Netlist_stats.gates_by_op)
  in
  check_int "and" 1 (count Netlist.And);
  check_int "not" 1 (count Netlist.Not);
  check_int "or" 1 (count Netlist.Or)

let test_stats_adder_depth_linear () =
  (* Ripple-carry: depth grows linearly with width. *)
  let depth w =
    let nl = Netlist.create "add" in
    let a = Netlist.input nl "a" w in
    let b = Netlist.input nl "b" w in
    let sum, _ = Comb.adder nl a b in
    Netlist.output nl "s" sum;
    (Psm_rtl.Netlist_stats.analyze nl).Psm_rtl.Netlist_stats.logic_depth
  in
  check_bool "wider is deeper" true (depth 16 > depth 4);
  check_bool "roughly linear" true (depth 16 < 4 * depth 4 + 8)

(* ---------- power model ---------- *)

let test_power_formula () =
  let cfg = { Power.vdd = 1.2; freq_hz = 50e6; cap_per_toggle = 2e-15 } in
  (* 0.5 * 1.44 * 50e6 * 2e-15 * 10 *)
  Alcotest.(check (float 1e-18)) "energy" (0.5 *. 1.44 *. 50e6 *. 2e-15 *. 10.)
    (Power.energy_of_activity cfg 10)

let test_power_linear_in_activity () =
  let cfg = Power.default in
  let e1 = Power.energy_of_activity cfg 1 in
  Alcotest.(check (float 1e-20)) "linear" (e1 *. 7.) (Power.energy_of_activity cfg 7)

let test_power_trace_of_activity () =
  let cfg = Power.default in
  let trace = Power.trace_of_activity cfg [| 0; 5; 10 |] in
  Alcotest.(check int) "length" 3 (Psm_trace.Power_trace.length trace);
  Alcotest.(check (float 1e-24)) "zero" 0. (Psm_trace.Power_trace.get trace 0)

let test_power_rejects_bad_config () =
  Alcotest.(check bool) "vdd <= 0" true
    (try
       ignore (Power.energy_of_activity { Power.default with Power.vdd = 0. } 1);
       false
     with Invalid_argument _ -> true)

(* ---------- properties ---------- *)

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:60 ~name arb f)

(* Random feed-forward circuit: compare the levelized simulator against a
   direct recursive evaluation of the same DAG. *)
let random_circuit_prop =
  let gen =
    QCheck.Gen.(
      let* n_gates = int_range 1 60 in
      let* choices = list_size (return n_gates) (pair (int_bound 5) (pair nat nat)) in
      let* inputs = list_size (return 4) bool in
      return (choices, inputs))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:80 ~name:"random circuits match direct evaluation"
       (QCheck.make gen)
       (fun (choices, input_values) ->
         let nl = Netlist.create "random" in
         let input_nets = Netlist.input nl "in" 4 in
         (* Build gates over already-existing nets only: feed-forward by
            construction. *)
         let nets = ref (Array.to_list input_nets) in
         let semantics = Hashtbl.create 64 in
         Array.iteri
           (fun i _net ->
             Hashtbl.replace semantics input_nets.(i) (fun () -> List.nth input_values i))
           input_nets;
         List.iter
           (fun (op_idx, (a_idx, b_idx)) ->
             let existing = Array.of_list !nets in
             let a = existing.(a_idx mod Array.length existing) in
             let b = existing.(b_idx mod Array.length existing) in
             let op, eval =
               match op_idx with
               | 0 -> (Netlist.And, fun x y -> x && y)
               | 1 -> (Netlist.Or, fun x y -> x || y)
               | 2 -> (Netlist.Xor, fun x y -> x <> y)
               | 3 -> (Netlist.Nand, fun x y -> not (x && y))
               | 4 -> (Netlist.Nor, fun x y -> not (x || y))
               | _ -> (Netlist.Xor, fun x y -> x <> y)
             in
             let out = Netlist.gate nl op [| a; b |] in
             let fa = Hashtbl.find semantics a and fb = Hashtbl.find semantics b in
             Hashtbl.replace semantics out (fun () -> eval (fa ()) (fb ()));
             nets := out :: !nets)
           choices;
         let outputs = Array.of_list (List.rev !nets) in
         Netlist.output nl "out" outputs;
         let sim = Sim.create nl in
         let esim = Psm_rtl.Event_sim.create nl in
         let in_bits =
           Bits.init ~width:4 (fun i -> List.nth input_values i)
         in
         let result = List.assoc "out" (Sim.step sim [ ("in", in_bits) ]) in
         let eresult = List.assoc "out" (Psm_rtl.Event_sim.step esim [ ("in", in_bits) ]) in
         Bits.equal result eresult
         && Sim.last_toggles sim = Psm_rtl.Event_sim.last_toggles esim
         && Array.for_all
              (fun i -> Bits.get result i = (Hashtbl.find semantics outputs.(i)) ())
              (Array.init (Array.length outputs) Fun.id)))

let properties =
  [ random_circuit_prop;
    prop "adder matches integer addition"
      QCheck.(pair (int_bound 65535) (int_bound 65535))
      (fun (x, y) ->
        let add =
          run_comb
            (fun nl -> function
              | [ a; b ] -> fst (Comb.adder nl a b)
              | _ -> assert false)
            [ ("a", 16); ("b", 16) ]
        in
        Bits.to_int (add [ Bits.of_int ~width:16 x; Bits.of_int ~width:16 y ])
        = (x + y) land 0xFFFF);
    prop "multiplier matches integer product"
      QCheck.(pair (int_bound 255) (int_bound 255))
      (fun (x, y) ->
        let mul =
          run_comb
            (fun nl -> function
              | [ a; b ] -> Comb.multiplier nl a b
              | _ -> assert false)
            [ ("a", 8); ("b", 8) ]
        in
        Bits.to_int (mul [ Bits.of_int ~width:8 x; Bits.of_int ~width:8 y ]) = x * y) ]

let suite =
  ( "rtl",
    [ Alcotest.test_case "netlist counts" `Quick test_counts;
      Alcotest.test_case "undriven net rejected" `Quick test_validate_undriven;
      Alcotest.test_case "unconnected dff_loop rejected" `Quick test_validate_unconnected_loop;
      Alcotest.test_case "const dedup" `Quick test_const_dedup;
      Alcotest.test_case "netlist interface" `Quick test_interface_of_netlist;
      Alcotest.test_case "adder exhaustive 4-bit" `Quick test_adder_exhaustive;
      Alcotest.test_case "subtractor" `Quick test_subtractor;
      Alcotest.test_case "multiplier" `Quick test_multiplier;
      Alcotest.test_case "mux tree" `Quick test_mux_tree;
      Alcotest.test_case "decoder one-hot" `Quick test_decoder;
      Alcotest.test_case "comparators" `Quick test_comparators;
      Alcotest.test_case "enabled counter" `Quick test_counter;
      Alcotest.test_case "counter wrap/reset" `Quick test_counter_wraps_and_reset;
      Alcotest.test_case "toggle counting" `Quick test_toggle_counting;
      Alcotest.test_case "cycles unconstructible" `Quick test_combinational_cycle_detected;
      Alcotest.test_case "sim input validation" `Quick test_sim_input_validation;
      Alcotest.test_case "verilog export" `Quick test_verilog_export_shape;
      Alcotest.test_case "verilog full IPs" `Quick test_verilog_export_full_ips;
      Alcotest.test_case "stats known circuit" `Quick test_stats_known_circuit;
      Alcotest.test_case "stats adder depth" `Quick test_stats_adder_depth_linear;
      Alcotest.test_case "power formula" `Quick test_power_formula;
      Alcotest.test_case "power linearity" `Quick test_power_linear_in_activity;
      Alcotest.test_case "power trace" `Quick test_power_trace_of_activity;
      Alcotest.test_case "power config validation" `Quick test_power_rejects_bad_config ]
    @ properties )
