(* Tests for Psm_mining: atomic propositions, the vocabulary, the frequent
   miner and proposition traces — including the paper's Fig. 3 worked
   example recovered by the actual miner. *)

module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface
module FT = Psm_trace.Functional_trace
module Atomic = Psm_mining.Atomic
module Vocabulary = Psm_mining.Vocabulary
module Miner = Psm_mining.Miner
module Prop_trace = Psm_mining.Prop_trace
module Table = Prop_trace.Table

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The paper's Fig. 3 trace. *)
let fig3_interface () =
  Interface.create
    [ Signal.input "v1" 1; Signal.input "v2" 1; Signal.input "v3" 3;
      Signal.output "v4" 3 ]

let fig3_trace () =
  let row v1 v2 v3 v4 =
    [| Bits.of_bool v1; Bits.of_bool v2; Bits.of_int ~width:3 v3; Bits.of_int ~width:3 v4 |]
  in
  FT.of_samples (fig3_interface ())
    [| row true false 3 1; row true false 3 1; row true false 3 1;
       row false true 3 3; row false true 4 4; row false true 2 2;
       row true true 0 0; row true true 3 1 |]

(* ---------- atomic propositions ---------- *)

let test_atomic_eval_const () =
  let sample = [| Bits.of_bool true; Bits.of_int ~width:4 7 |] in
  check_bool "v0 = 1" true (Atomic.eval (Atomic.eq_const 0 (Bits.of_bool true)) sample);
  check_bool "v1 = 7" true (Atomic.eval (Atomic.eq_const 1 (Bits.of_int ~width:4 7)) sample);
  check_bool "v1 = 3" false (Atomic.eval (Atomic.eq_const 1 (Bits.of_int ~width:4 3)) sample)

let test_atomic_eval_pairs () =
  let sample = [| Bits.of_int ~width:4 3; Bits.of_int ~width:4 9 |] in
  check_bool "lt" true (Atomic.eval (Atomic.compare_signals Atomic.Lt 0 1) sample);
  check_bool "gt" true (Atomic.eval (Atomic.compare_signals Atomic.Gt 1 0) sample);
  check_bool "eq" false (Atomic.eval (Atomic.compare_signals Atomic.Eq 0 1) sample)

let test_atomic_self_compare_rejected () =
  Alcotest.check_raises "self compare"
    (Invalid_argument "Atomic.compare_signals: signal compared to itself")
    (fun () -> ignore (Atomic.compare_signals Atomic.Eq 2 2))

let test_atomic_pp () =
  let iface = fig3_interface () in
  Alcotest.(check string) "const" "v1 = 1"
    (Atomic.to_string iface (Atomic.eq_const 0 (Bits.of_bool true)));
  Alcotest.(check string) "pair" "v3 > v4"
    (Atomic.to_string iface (Atomic.compare_signals Atomic.Gt 2 3))

(* ---------- vocabulary ---------- *)

let test_vocabulary_dedup_and_order () =
  let iface = fig3_interface () in
  let a = Atomic.eq_const 0 (Bits.of_bool true) in
  let b = Atomic.compare_signals Atomic.Gt 2 3 in
  let v = Vocabulary.create iface [ b; a; a; b ] in
  check_int "deduplicated" 2 (Vocabulary.size v)

let test_vocabulary_eval_row () =
  let iface = fig3_interface () in
  let v =
    Vocabulary.create iface
      [ Atomic.eq_const 0 (Bits.of_bool true); Atomic.compare_signals Atomic.Gt 2 3 ]
  in
  let trace = fig3_trace () in
  let row = Vocabulary.eval_sample v (FT.sample trace ~time:0) in
  Alcotest.(check (array bool)) "t0 row" [| true; true |] row;
  let row3 = Vocabulary.eval_sample v (FT.sample trace ~time:3) in
  Alcotest.(check (array bool)) "t3 row" [| false; false |] row3

let test_row_key_injective_on_rows () =
  let a = [| true; false; true |] and b = [| true; false; true |] in
  Alcotest.(check string) "equal rows equal keys" (Vocabulary.row_key a) (Vocabulary.row_key b);
  check_bool "different rows differ" false
    (Vocabulary.row_key a = Vocabulary.row_key [| true; true; true |])

(* ---------- miner ---------- *)

(* min_mean_run sits just above 2.5 so that marginal value atoms (v3 = 3
   holds 5 instants in 2 runs, mean 2.5) are excluded while v2's stable
   atoms (runs of 3 and 5) survive — the vocabulary the paper chose. *)
let fig3_config =
  { Miner.default with
    Miner.min_support = 0.1;
    min_mean_run = 2.6;
    max_short_run_fraction = 1.0 }

let test_miner_fig3_segmentation () =
  (* With Fig. 3's trace the miner must produce a vocabulary whose
     proposition trace has exactly the paper's segmentation: p_a [0,2],
     p_b [3,5], p_c [6,6], p_d [7,7]. *)
  let trace = fig3_trace () in
  let vocabulary = Miner.mine_vocabulary ~config:fig3_config [ trace ] in
  let table = Table.create vocabulary in
  let gamma = Prop_trace.of_functional table trace in
  let segments = Prop_trace.segments gamma in
  check_int "4 segments" 4 (List.length segments);
  Alcotest.(check (list (triple int int int)))
    "intervals"
    [ (0, 0, 2); (1, 3, 5); (2, 6, 6); (3, 7, 7) ]
    (List.map (fun (p, a, b) -> (p, a, b)) segments)

let test_miner_support_filter () =
  (* With an extreme support threshold nothing survives except atoms that
     hold on most of the trace. *)
  let trace = fig3_trace () in
  let vocabulary =
    Miner.mine_vocabulary
      ~config:{ fig3_config with Miner.min_support = 0.9 }
      [ trace ]
  in
  check_int "nothing frequent enough" 0 (Vocabulary.size vocabulary)

let test_miner_stability_filter () =
  (* A fast-flickering atom is rejected even with high support. *)
  let iface = Interface.create [ Signal.input "x" 1; Signal.output "y" 1 ] in
  let samples =
    Array.init 64 (fun i -> [| Bits.of_bool (i mod 2 = 0); Bits.of_bool (i < 32) |])
  in
  let trace = FT.of_samples iface samples in
  let vocabulary =
    Miner.mine_vocabulary
      ~config:{ Miner.default with Miner.min_support = 0.1; min_mean_run = 4. }
      [ trace ]
  in
  let names =
    Array.to_list (Vocabulary.atoms vocabulary)
    |> List.map (Atomic.to_string iface)
  in
  check_bool "x atoms rejected" true
    (not (List.exists (fun n -> String.length n >= 1 && n.[0] = 'x') names));
  check_bool "y atom kept" true
    (List.exists (fun n -> String.length n >= 1 && n.[0] = 'y') names)

let test_miner_short_run_fraction () =
  (* An atom stable in one phase and flickering in another is caught by
     the short-run-fraction criterion. *)
  let iface = Interface.create [ Signal.input "x" 1; Signal.output "c" 1 ] in
  let samples =
    Array.init 120 (fun i ->
        let x = if i < 40 then true else i mod 2 = 0 in
        [| Bits.of_bool x; Bits.of_bool true |])
  in
  let trace = FT.of_samples iface samples in
  let atoms config =
    Miner.mine_vocabulary ~config [ trace ]
    |> Vocabulary.atoms |> Array.to_list
    |> List.map (Atomic.to_string iface)
  in
  let strict =
    atoms { Miner.default with Miner.min_support = 0.05; min_mean_run = 2.;
            max_short_run_fraction = 0.25 }
  in
  check_bool "flicker-in-phase rejected" true
    (not (List.mem "x = 1" strict));
  let lax =
    atoms { Miner.default with Miner.min_support = 0.05; min_mean_run = 2.;
            max_short_run_fraction = 1.0 }
  in
  check_bool "kept when criterion disabled" true (List.mem "x = 1" lax)

let test_miner_width_caps () =
  let iface = Interface.create [ Signal.input "wide" 128; Signal.output "y" 1 ] in
  let v = Bits.of_hex_string ~width:128 "0123456789abcdeffedcba9876543210" in
  let samples = Array.make 50 [| v; Bits.of_bool true |] in
  let trace = FT.of_samples iface samples in
  let vocabulary = Miner.mine_vocabulary [ trace ] in
  let has_wide_atom =
    Array.exists
      (fun (a : Atomic.t) -> a.Atomic.lhs = 0)
      (Vocabulary.atoms vocabulary)
  in
  check_bool "no atoms on 128-bit buses" false has_wide_atom

let test_candidate_stats () =
  let trace = fig3_trace () in
  let stats = Miner.candidate_stats ~config:fig3_config [ trace ] in
  let v1_true =
    List.find
      (fun s ->
        s.Miner.atom.Atomic.lhs = 0
        && Atomic.equal s.Miner.atom (Atomic.eq_const 0 (Bits.of_bool true)))
      stats
  in
  check_int "occurrences" 5 v1_true.Miner.occurrences;
  check_int "runs" 2 v1_true.Miner.runs;
  Alcotest.(check (float 1e-9)) "support" (5. /. 8.) v1_true.Miner.support;
  Alcotest.(check (float 1e-9)) "mean run" 2.5 v1_true.Miner.mean_run

(* ---------- value counter ---------- *)

let counter_snapshot counter =
  Miner.Value_counter.fold
    (fun v (c : Miner.Value_counter.cell) acc ->
      (Bits.to_int v, (c.occ, c.runs, c.short_runs)) :: acc)
    counter []
  |> List.sort compare

let test_value_counter_fold_reentrant () =
  (* Regression: [fold] used to close each value's open run by mutating
     the live cells, corrupting any later [fold] or [observe]. *)
  let counter = Miner.Value_counter.create ~short_below:5 () in
  let v = Bits.of_int ~width:4 3 in
  Miner.Value_counter.observe counter 0 v;
  Miner.Value_counter.observe counter 1 v;
  Miner.Value_counter.observe counter 2 v;
  let first = counter_snapshot counter in
  Alcotest.(check (list (pair int (triple int int int))))
    "closed run visible" [ (3, (3, 1, 1)) ] first;
  Alcotest.(check (list (pair int (triple int int int))))
    "second fold identical" first (counter_snapshot counter)

let test_value_counter_observe_after_fold () =
  let counter = Miner.Value_counter.create ~short_below:5 () in
  let v = Bits.of_int ~width:4 3 in
  Miner.Value_counter.observe counter 0 v;
  Miner.Value_counter.observe counter 1 v;
  Miner.Value_counter.observe counter 2 v;
  ignore (counter_snapshot counter);
  (* The run continues at time 3: still one run, now of length 4. *)
  Miner.Value_counter.observe counter 3 v;
  Alcotest.(check (list (pair int (triple int int int))))
    "run continued, not double-counted"
    [ (3, (4, 1, 1)) ]
    (counter_snapshot counter)

let test_value_counter_pruning () =
  (* Hapax values are dropped once the table outgrows [prune_at];
     repeated values survive with their full statistics. *)
  let counter = Miner.Value_counter.create ~prune_at:3 ~short_below:1 () in
  let value i = Bits.of_int ~width:8 i in
  let frequent = value 100 in
  Miner.Value_counter.observe counter 0 frequent;
  Miner.Value_counter.observe counter 1 (value 1);
  Miner.Value_counter.observe counter 2 (value 2);
  Miner.Value_counter.observe counter 3 frequent;
  (* 4th distinct value pushes the table over prune_at = 3: every value
     seen once (1, 2 and 3) is dropped. *)
  Miner.Value_counter.observe counter 4 (value 3);
  Miner.Value_counter.observe counter 5 (value 4);
  Alcotest.(check (list (pair int (triple int int int))))
    "hapaxes pruned, frequent value intact"
    [ (4, (1, 1, 0)); (100, (2, 2, 0)) ]
    (counter_snapshot counter)

(* ---------- proposition traces ---------- *)

let test_table_interning () =
  let trace = fig3_trace () in
  let vocabulary = Miner.mine_vocabulary ~config:fig3_config [ trace ] in
  let table = Table.create vocabulary in
  let s0 = FT.sample trace ~time:0 in
  let id0 = Table.classify_or_add table s0 in
  check_int "same row same id" id0 (Table.classify_or_add table s0);
  Alcotest.(check (option int)) "classify finds it" (Some id0) (Table.classify table s0);
  check_int "count" 1 (Table.prop_count table)

let test_classify_unknown () =
  let trace = fig3_trace () in
  let vocabulary = Miner.mine_vocabulary ~config:fig3_config [ trace ] in
  let table = Table.create vocabulary in
  ignore (Prop_trace.of_functional table trace);
  (* A sample whose truth row never occurred: v1=0, v2=0. *)
  let unknown =
    [| Bits.of_bool false; Bits.of_bool false; Bits.of_int ~width:3 1;
       Bits.of_int ~width:3 5 |]
  in
  Alcotest.(check (option int)) "unknown row" None (Table.classify table unknown)

let test_prop_names () =
  let trace = fig3_trace () in
  let vocabulary = Miner.mine_vocabulary ~config:fig3_config [ trace ] in
  let table = Table.create vocabulary in
  ignore (Prop_trace.of_functional table trace);
  Alcotest.(check string) "p_a" "p_a" (Table.name table 0);
  Alcotest.(check string) "p_b" "p_b" (Table.name table 1)

let test_holds_exactly_one () =
  let trace = fig3_trace () in
  let vocabulary = Miner.mine_vocabulary ~config:fig3_config [ trace ] in
  let table = Table.create vocabulary in
  let gamma = Prop_trace.of_functional table trace in
  check_bool "invariant" true (Prop_trace.holds_exactly_one gamma trace)

let test_segments_cover () =
  let trace = fig3_trace () in
  let vocabulary = Miner.mine_vocabulary ~config:fig3_config [ trace ] in
  let table = Table.create vocabulary in
  let gamma = Prop_trace.of_functional table trace in
  let segments = Prop_trace.segments gamma in
  (* Segments tile [0, n-1] without gaps or overlaps. *)
  let _ =
    List.fold_left
      (fun expected (_, start, stop) ->
        check_int "contiguous" expected start;
        check_bool "ordered" true (stop >= start);
        stop + 1)
      0 segments
  in
  ()

(* ---------- properties ---------- *)

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:40 ~name arb f)

let arb_small_trace =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 60 in
      let iface = Interface.create [ Signal.input "a" 1; Signal.input "b" 4; Signal.output "c" 4 ] in
      let* samples =
        list_size (return n)
          (map2
             (fun a b -> [| Bits.of_bool a; Bits.of_int ~width:4 (b land 15); Bits.of_int ~width:4 ((b / 3) land 15) |])
             bool (int_bound 40))
      in
      return (FT.of_samples iface (Array.of_list samples)))
  in
  QCheck.make gen

let lax_config =
  { Miner.default with Miner.min_support = 0.05; min_mean_run = 1.;
    max_short_run_fraction = 1.0 }

let properties =
  [ prop "exactly-one-holds for any trace" arb_small_trace (fun trace ->
        let vocabulary = Miner.mine_vocabulary ~config:lax_config [ trace ] in
        if Vocabulary.size vocabulary = 0 then true
        else begin
          let table = Table.create vocabulary in
          let gamma = Prop_trace.of_functional table trace in
          Prop_trace.holds_exactly_one gamma trace
        end);
    prop "segments tile the trace" arb_small_trace (fun trace ->
        let vocabulary = Miner.mine_vocabulary ~config:lax_config [ trace ] in
        if Vocabulary.size vocabulary = 0 then true
        else begin
          let table = Table.create vocabulary in
          let gamma = Prop_trace.of_functional table trace in
          let segments = Prop_trace.segments gamma in
          let covered =
            List.fold_left
              (fun acc (_, start, stop) ->
                match acc with
                | Some expected when start = expected -> Some (stop + 1)
                | _ -> None)
              (Some 0) segments
          in
          covered = Some (FT.length trace)
        end);
    prop "every training sample classifies" arb_small_trace (fun trace ->
        let vocabulary = Miner.mine_vocabulary ~config:lax_config [ trace ] in
        if Vocabulary.size vocabulary = 0 then true
        else begin
          let table = Table.create vocabulary in
          ignore (Prop_trace.of_functional table trace);
          let ok = ref true in
          FT.iter
            (fun _ sample ->
              if Table.classify table sample = None then ok := false)
            trace;
          !ok
        end);
    prop "classification stable across re-runs" arb_small_trace (fun trace ->
        let vocabulary = Miner.mine_vocabulary ~config:lax_config [ trace ] in
        if Vocabulary.size vocabulary = 0 then true
        else begin
          let table = Table.create vocabulary in
          let g1 = Prop_trace.of_functional table trace in
          let g2 = Prop_trace.of_functional table trace in
          Prop_trace.prop_ids g1 = Prop_trace.prop_ids g2
        end) ]

(* ---------- negate and literals_of_key ---------- *)

let test_atomic_negate () =
  (* Over every sample, exactly one of [t] and the atoms of [negate t]
     holds (trichotomy), for both const and var–var operands. *)
  let samples =
    List.concat_map
      (fun a ->
        List.map
          (fun b ->
            [| Bits.of_bool true; Bits.of_bool false;
               Bits.of_int ~width:3 a; Bits.of_int ~width:3 b |])
          [ 0; 1; 3; 7 ])
      [ 0; 2; 3; 5 ]
  in
  let atoms =
    [ Atomic.eq_const 2 (Bits.of_int ~width:3 3);
      { Atomic.lhs = 2; cmp = Atomic.Lt; rhs = Atomic.Const (Bits.of_int ~width:3 4) };
      { Atomic.lhs = 2; cmp = Atomic.Gt; rhs = Atomic.Const (Bits.of_int ~width:3 4) };
      Atomic.compare_signals Atomic.Eq 2 3;
      Atomic.compare_signals Atomic.Lt 2 3;
      Atomic.compare_signals Atomic.Gt 2 3 ]
  in
  List.iter
    (fun t ->
      let negs = Atomic.negate t in
      check_int "negation is a two-atom disjunction" 2 (List.length negs);
      List.iter
        (fun s ->
          let holds = List.filter (fun a -> Atomic.eval a s) (t :: negs) in
          check_int "exactly one of t and its negation atoms holds" 1
            (List.length holds))
        samples)
    atoms

let test_literals_of_key () =
  let iface = fig3_interface () in
  let voc =
    Vocabulary.create iface
      [ Atomic.eq_const 0 (Bits.of_bool true);
        Atomic.eq_const 2 (Bits.of_int ~width:3 3);
        Atomic.compare_signals Atomic.Gt 2 3 ]
  in
  let row = [| true; false; true |] in
  let literals = Vocabulary.literals_of_key voc (Vocabulary.row_key row) in
  check_int "one literal per atom" (Vocabulary.size voc) (List.length literals);
  List.iteri
    (fun i (atom, polarity) ->
      check_bool "atom order matches the vocabulary" true
        (Atomic.equal atom (Vocabulary.atom voc i));
      check_bool "polarity matches the row" true (polarity = row.(i)))
    literals;
  (* A sample consistent with the row satisfies exactly the literals. *)
  let sample =
    [| Bits.of_bool true; Bits.of_bool false;
       Bits.of_int ~width:3 5; Bits.of_int ~width:3 1 |]
  in
  check_bool "row is the truth assignment of its literals" true
    (List.for_all (fun (a, pol) -> Atomic.eval a sample = pol) literals);
  check_bool "wrong key size rejected" true
    (try
       ignore (Vocabulary.literals_of_key voc "too long for this vocabulary");
       false
     with Invalid_argument _ -> true)

let suite =
  ( "mining",
    [ Alcotest.test_case "atomic const eval" `Quick test_atomic_eval_const;
      Alcotest.test_case "atomic negate" `Quick test_atomic_negate;
      Alcotest.test_case "literals of key" `Quick test_literals_of_key;
      Alcotest.test_case "atomic pair eval" `Quick test_atomic_eval_pairs;
      Alcotest.test_case "atomic self-compare" `Quick test_atomic_self_compare_rejected;
      Alcotest.test_case "atomic printing" `Quick test_atomic_pp;
      Alcotest.test_case "vocabulary dedup" `Quick test_vocabulary_dedup_and_order;
      Alcotest.test_case "vocabulary rows" `Quick test_vocabulary_eval_row;
      Alcotest.test_case "row keys" `Quick test_row_key_injective_on_rows;
      Alcotest.test_case "Fig.3 segmentation" `Quick test_miner_fig3_segmentation;
      Alcotest.test_case "support filter" `Quick test_miner_support_filter;
      Alcotest.test_case "stability filter" `Quick test_miner_stability_filter;
      Alcotest.test_case "short-run fraction" `Quick test_miner_short_run_fraction;
      Alcotest.test_case "width caps" `Quick test_miner_width_caps;
      Alcotest.test_case "candidate stats" `Quick test_candidate_stats;
      Alcotest.test_case "value counter fold reentrant" `Quick
        test_value_counter_fold_reentrant;
      Alcotest.test_case "value counter observe after fold" `Quick
        test_value_counter_observe_after_fold;
      Alcotest.test_case "value counter pruning" `Quick test_value_counter_pruning;
      Alcotest.test_case "interning" `Quick test_table_interning;
      Alcotest.test_case "unknown row" `Quick test_classify_unknown;
      Alcotest.test_case "prop names" `Quick test_prop_names;
      Alcotest.test_case "exactly-one invariant" `Quick test_holds_exactly_one;
      Alcotest.test_case "segments cover" `Quick test_segments_cover ]
    @ properties )
