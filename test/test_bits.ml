(* Unit and property tests for Psm_bits.Bits. *)

module Bits = Psm_bits.Bits

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let bits_testable = Alcotest.testable Bits.pp Bits.equal

(* ---------- unit tests ---------- *)

let test_zero_ones () =
  check_int "zero popcount" 0 (Bits.popcount (Bits.zero 100));
  check_int "ones popcount" 100 (Bits.popcount (Bits.ones 100));
  check "zero is_zero" true (Bits.is_zero (Bits.zero 7));
  check "ones not is_zero" false (Bits.is_zero (Bits.ones 7))

let test_of_int_roundtrip () =
  List.iter
    (fun n -> check_int (string_of_int n) n (Bits.to_int (Bits.of_int ~width:20 n)))
    [ 0; 1; 2; 1023; 524287; 1048575 ]

let test_of_int64_roundtrip () =
  List.iter
    (fun n ->
      Alcotest.(check int64)
        (Int64.to_string n) n
        (Bits.to_int64 (Bits.of_int64 ~width:64 n)))
    [ 0L; 1L; 0xFFFFFFFFFFFFFFFFL; 0x8000000000000000L; 0x0123456789ABCDEFL ]

let test_width_masking () =
  (* of_int keeps only the low bits. *)
  check_int "mask" 5 (Bits.to_int (Bits.of_int ~width:3 0xFD))

let test_hex_string () =
  let v = Bits.of_hex_string ~width:16 "beef" in
  check_string "hex" "beef" (Bits.to_hex_string v);
  check_int "value" 0xBEEF (Bits.to_int v);
  let v = Bits.of_hex_string ~width:128 "000102030405060708090a0b0c0d0e0f" in
  check_string "wide hex" "000102030405060708090a0b0c0d0e0f" (Bits.to_hex_string v)

let test_hex_rejects_overflow () =
  Alcotest.check_raises "too wide" (Invalid_argument
    "Bits.of_hex_string: value wider than requested width")
    (fun () -> ignore (Bits.of_hex_string ~width:4 "1f"))

let test_binary_string () =
  let v = Bits.of_binary_string "1010_0110" in
  check_int "width" 8 (Bits.width v);
  check_int "value" 0xA6 (Bits.to_int v);
  check_string "rendering" "10100110" (Bits.to_binary_string v)

let test_get_set () =
  let v = Bits.zero 40 in
  let v = Bits.set v 39 true in
  check "bit 39" true (Bits.get v 39);
  check "bit 38" false (Bits.get v 38);
  let v = Bits.set v 39 false in
  check "cleared" true (Bits.is_zero v)

let test_arithmetic () =
  let a = Bits.of_int ~width:8 200 and b = Bits.of_int ~width:8 100 in
  check_int "add wraps" 44 (Bits.to_int (Bits.add a b));
  check_int "sub" 100 (Bits.to_int (Bits.sub a b));
  check_int "sub wraps" 156 (Bits.to_int (Bits.sub b a));
  check_int "mul wraps" ((200 * 100) mod 256) (Bits.to_int (Bits.mul a b))

let test_wide_arithmetic () =
  let a = Bits.of_hex_string ~width:128 "ffffffffffffffffffffffffffffffff" in
  let one = Bits.of_int ~width:128 1 in
  check "all-ones + 1 = 0" true (Bits.is_zero (Bits.add a one));
  check "0 - 1 = all-ones" true (Bits.equal a (Bits.sub (Bits.zero 128) one))

let test_mul_wide () =
  (* 64-bit multiply checked against Int64 arithmetic on the low bits. *)
  let a = Bits.of_int64 ~width:64 0x123456789ABCDEFL in
  let b = Bits.of_int64 ~width:64 0xFEDCBA987654321L in
  let expect = Int64.mul 0x123456789ABCDEFL 0xFEDCBA987654321L in
  Alcotest.(check int64) "low 64 bits" expect (Bits.to_int64 (Bits.mul a b))

let test_logic () =
  let a = Bits.of_int ~width:8 0b1100_1010 and b = Bits.of_int ~width:8 0b1010_0110 in
  check_int "and" 0b1000_0010 (Bits.to_int (Bits.logand a b));
  check_int "or" 0b1110_1110 (Bits.to_int (Bits.logor a b));
  check_int "xor" 0b0110_1100 (Bits.to_int (Bits.logxor a b));
  check_int "not" 0b0011_0101 (Bits.to_int (Bits.lognot a))

let test_shifts () =
  let v = Bits.of_int ~width:8 0b0001_1000 in
  check_int "shl" 0b0110_0000 (Bits.to_int (Bits.shift_left v 2));
  check_int "shr" 0b0000_0110 (Bits.to_int (Bits.shift_right v 2));
  check_int "shl overflow drops" 0 (Bits.to_int (Bits.shift_left v 8));
  check_int "rotl" 0b1000_0001 (Bits.to_int (Bits.rotate_left v 4));
  check_int "rotr == rotl(-n)" (Bits.to_int (Bits.rotate_right v 3))
    (Bits.to_int (Bits.rotate_left v (-3)))

let test_slice_concat () =
  let v = Bits.of_int ~width:12 0xABC in
  check_int "slice hi" 0xA (Bits.to_int (Bits.slice v ~hi:11 ~lo:8));
  check_int "slice mid" 0xB (Bits.to_int (Bits.slice v ~hi:7 ~lo:4));
  let rebuilt =
    Bits.concat_list
      [ Bits.slice v ~hi:11 ~lo:8; Bits.slice v ~hi:7 ~lo:4; Bits.slice v ~hi:3 ~lo:0 ]
  in
  Alcotest.check bits_testable "concat of slices" v rebuilt

let test_compare () =
  let a = Bits.of_int ~width:8 5 and b = Bits.of_int ~width:8 200 in
  check "ult" true (Bits.ult a b);
  check "not ult" false (Bits.ult b a);
  check "not ult self" false (Bits.ult a a);
  (* compare orders by width first *)
  check "narrower < wider" true (Bits.compare (Bits.ones 4) (Bits.zero 5) < 0)

let test_hamming () =
  let a = Bits.of_int ~width:16 0xFF00 and b = Bits.of_int ~width:16 0x0FF0 in
  check_int "hamming" 8 (Bits.hamming_distance a b);
  check_int "self" 0 (Bits.hamming_distance a a)

let test_width_mismatch_raises () =
  let a = Bits.zero 8 and b = Bits.zero 9 in
  List.iter
    (fun (name, f) ->
      Alcotest.check_raises name
        (Invalid_argument (Printf.sprintf "Bits.%s: width mismatch (8 vs 9)" name))
        (fun () -> ignore (f a b)))
    [ ("logand", Bits.logand); ("logor", Bits.logor); ("logxor", Bits.logxor);
      ("add", Bits.add); ("sub", Bits.sub); ("mul", Bits.mul) ]

let test_pp () =
  check_string "pp hex" "8'h3a" (Format.asprintf "%a" Bits.pp (Bits.of_int ~width:8 0x3A));
  check_string "pp bin" "4'b1010"
    (Format.asprintf "%a" Bits.pp_binary (Bits.of_int ~width:4 0xA))

(* ---------- properties ---------- *)

let gen_bits width =
  QCheck.Gen.(
    map
      (fun l -> Bits.init ~width (fun i -> List.nth l i))
      (list_size (return width) bool))

let arb_bits width =
  QCheck.make ~print:(fun v -> Format.asprintf "%a" Bits.pp v) (gen_bits width)

let arb_pair width = QCheck.pair (arb_bits width) (arb_bits width)

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:200 ~name arb f)

let properties =
  [ prop "xor involution" (arb_pair 70) (fun (a, b) ->
        Bits.equal a (Bits.logxor (Bits.logxor a b) b));
    prop "add/sub inverse" (arb_pair 70) (fun (a, b) ->
        Bits.equal a (Bits.sub (Bits.add a b) b));
    prop "not involution" (arb_bits 70) (fun a -> Bits.equal a (Bits.lognot (Bits.lognot a)));
    prop "hamming = popcount xor" (arb_pair 70) (fun (a, b) ->
        Bits.hamming_distance a b = Bits.popcount (Bits.logxor a b));
    prop "hamming triangle inequality" (QCheck.triple (arb_bits 48) (arb_bits 48) (arb_bits 48))
      (fun (a, b, c) ->
        Bits.hamming_distance a c
        <= Bits.hamming_distance a b + Bits.hamming_distance b c);
    prop "hex roundtrip" (arb_bits 75) (fun a ->
        Bits.equal a (Bits.of_hex_string ~width:75 (Bits.to_hex_string a)));
    prop "binary roundtrip" (arb_bits 67) (fun a ->
        Bits.equal a (Bits.of_binary_string (Bits.to_binary_string a)));
    prop "rotate composition" (QCheck.pair (arb_bits 33) QCheck.small_nat) (fun (a, n) ->
        Bits.equal (Bits.rotate_left a (n mod 33))
          (Bits.rotate_right a (33 - (n mod 33))));
    prop "shift_left then right loses low bits only" (arb_bits 40) (fun a ->
        let back = Bits.shift_right (Bits.shift_left a 5) 5 in
        Bits.equal (Bits.slice back ~hi:34 ~lo:0) (Bits.slice a ~hi:34 ~lo:0));
    prop "concat slices identity" (arb_bits 41) (fun a ->
        Bits.equal a
          (Bits.concat (Bits.slice a ~hi:40 ~lo:17) (Bits.slice a ~hi:16 ~lo:0)));
    prop "compare total order consistent with equal" (arb_pair 50) (fun (a, b) ->
        Bits.equal a b = (Bits.compare a b = 0));
    prop "mul commutative" (arb_pair 64) (fun (a, b) ->
        Bits.equal (Bits.mul a b) (Bits.mul b a));
    prop "add commutative" (arb_pair 96) (fun (a, b) ->
        Bits.equal (Bits.add a b) (Bits.add b a));
    prop "mul distributes over add (mod 2^w)"
      (QCheck.triple (arb_bits 32) (arb_bits 32) (arb_bits 32))
      (fun (a, b, c) ->
        Bits.equal (Bits.mul a (Bits.add b c))
          (Bits.add (Bits.mul a b) (Bits.mul a c))) ]

let suite =
  ( "bits",
    [ Alcotest.test_case "zero/ones" `Quick test_zero_ones;
      Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
      Alcotest.test_case "of_int64 roundtrip" `Quick test_of_int64_roundtrip;
      Alcotest.test_case "width masking" `Quick test_width_masking;
      Alcotest.test_case "hex strings" `Quick test_hex_string;
      Alcotest.test_case "hex overflow rejected" `Quick test_hex_rejects_overflow;
      Alcotest.test_case "binary strings" `Quick test_binary_string;
      Alcotest.test_case "get/set" `Quick test_get_set;
      Alcotest.test_case "arithmetic" `Quick test_arithmetic;
      Alcotest.test_case "wide arithmetic" `Quick test_wide_arithmetic;
      Alcotest.test_case "wide multiply" `Quick test_mul_wide;
      Alcotest.test_case "logic" `Quick test_logic;
      Alcotest.test_case "shifts/rotates" `Quick test_shifts;
      Alcotest.test_case "slice/concat" `Quick test_slice_concat;
      Alcotest.test_case "comparisons" `Quick test_compare;
      Alcotest.test_case "hamming distance" `Quick test_hamming;
      Alcotest.test_case "width mismatch raises" `Quick test_width_mismatch_raises;
      Alcotest.test_case "printing" `Quick test_pp ]
    @ properties )
