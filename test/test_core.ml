(* Tests for Psm_core: assertions, power attributes, the PSM structure,
   the XU automaton, PSMGenerator, mergeability, simplify, join, the
   data-dependent-state optimization, single-chain simulation and the dot
   exporter. Includes the paper's Figs. 5 and 6 as golden tests. *)

module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface
module FT = Psm_trace.Functional_trace
module PT = Psm_trace.Power_trace
module Assertion = Psm_core.Assertion
module Power_attr = Psm_core.Power_attr
module Psm = Psm_core.Psm
module Xu = Psm_core.Xu
module Generator = Psm_core.Generator
module Merge = Psm_core.Merge
module Simplify = Psm_core.Simplify
module Join = Psm_core.Join
module Optimize = Psm_core.Optimize
module Sim_single = Psm_core.Sim_single
module Vocabulary = Psm_mining.Vocabulary
module Prop_trace = Psm_mining.Prop_trace
module Table = Prop_trace.Table

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A tiny synthetic world: one 4-bit signal [s]; the proposition is simply
   its value (atoms s=0..s=15 would be the vocabulary, but we register
   rows on demand).  Helper to turn a prop-id sequence into a table,
   functional trace, proposition trace and power trace. *)
let world values powers =
  let iface = Interface.create [ Signal.input "s" 4; Signal.output "o" 1 ] in
  let atoms = List.init 16 (fun v -> Psm_mining.Atomic.eq_const 0 (Bits.of_int ~width:4 v)) in
  let table = Table.create (Vocabulary.create iface atoms) in
  let samples =
    Array.of_list
      (List.map (fun v -> [| Bits.of_int ~width:4 v; Bits.of_bool false |]) values)
  in
  let trace = FT.of_samples iface samples in
  let gamma = Prop_trace.of_functional table trace in
  let delta = PT.of_array (Array.of_list powers) in
  (table, trace, gamma, delta)

(* ---------- assertions ---------- *)

let test_assertion_smart_constructors () =
  let u = Assertion.Until (0, 1) and x = Assertion.Next (1, 2) in
  check_bool "seq flattens" true
    (Assertion.equal
       (Assertion.seq [ Assertion.seq [ u; x ]; u ])
       (Assertion.Seq [ u; x; u ]));
  check_bool "singleton seq is identity" true (Assertion.equal u (Assertion.seq [ u ]));
  check_bool "alt dedups" true (Assertion.equal u (Assertion.alt [ u; u ]));
  check_bool "alt flattens" true
    (Assertion.equal
       (Assertion.alt [ Assertion.alt [ u; x ]; u ])
       (Assertion.Alt [ u; x ]))

let test_assertion_entry_exit () =
  let u = Assertion.Until (3, 4) and x = Assertion.Next (4, 5) in
  Alcotest.(check (list int)) "until entry" [ 3 ] (Assertion.entry_props u);
  Alcotest.(check (list int)) "until exit" [ 4 ] (Assertion.exit_props u);
  let s = Assertion.seq [ u; x ] in
  Alcotest.(check (list int)) "seq entry" [ 3 ] (Assertion.entry_props s);
  Alcotest.(check (list int)) "seq exit" [ 5 ] (Assertion.exit_props s);
  let a = Assertion.alt [ u; Assertion.Until (7, 8) ] in
  Alcotest.(check (list int)) "alt entries" [ 3; 7 ] (Assertion.entry_props a);
  Alcotest.(check (list int)) "alt exits" [ 4; 8 ] (Assertion.exit_props a)

let test_assertion_props_and_pp () =
  let s = Assertion.seq [ Assertion.Until (1, 2); Assertion.Next (2, 3) ] in
  Alcotest.(check (list int)) "props" [ 1; 2; 3 ] (Assertion.props s);
  Alcotest.(check string) "pp" "{p1 U p2; p2 X p3}" (Format.asprintf "%a" Assertion.pp s)

let test_assertion_compare_total () =
  let all =
    [ Assertion.Until (0, 1); Assertion.Next (0, 1);
      Assertion.Seq [ Assertion.Until (0, 1); Assertion.Next (1, 2) ];
      Assertion.Alt [ Assertion.Until (0, 1); Assertion.Until (2, 3) ] ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check_bool "antisymmetry" true
            (Assertion.compare a b = -Assertion.compare b a))
        all)
    all

(* ---------- power attributes ---------- *)

let test_attr_of_interval () =
  let delta = PT.of_array [| 1.; 2.; 3.; 4.; 5. |] in
  let a = Power_attr.of_interval delta ~trace:0 ~start:1 ~stop:3 in
  Alcotest.(check (float 1e-9)) "mu" 3. a.Power_attr.mu;
  Alcotest.(check (float 1e-9)) "sigma" 1. a.Power_attr.sigma;
  check_int "n" 3 a.Power_attr.n

let test_attr_merge_exact () =
  (* merge must equal a literal rescan of the union of intervals. *)
  let delta = PT.of_array (Array.init 50 (fun i -> float_of_int ((i * 7) mod 13))) in
  let a = Power_attr.of_interval delta ~trace:0 ~start:0 ~stop:9 in
  let b = Power_attr.of_interval delta ~trace:0 ~start:25 ~stop:44 in
  let merged = Power_attr.merge a b in
  let rescanned = Power_attr.recompute [| delta |] merged in
  Alcotest.(check (float 1e-9)) "mu" rescanned.Power_attr.mu merged.Power_attr.mu;
  Alcotest.(check (float 1e-9)) "sigma" rescanned.Power_attr.sigma merged.Power_attr.sigma;
  check_int "n" rescanned.Power_attr.n merged.Power_attr.n

let test_relative_sigma () =
  let a = { Power_attr.mu = 10.; sigma = 2.; n = 5; intervals = [] } in
  Alcotest.(check (float 1e-9)) "ratio" 0.2 (Power_attr.relative_sigma a)

(* ---------- PSM structure ---------- *)

(* A table with propositions 0..5 interned, for hand-built PSMs. *)
let empty_world () =
  let table, _, _, _ = world [ 0; 1; 2; 3; 4; 5 ] [ 1.; 1.; 1.; 1.; 1.; 1. ] in
  table

let attr mu n : Power_attr.t = { mu; sigma = 0.; n; intervals = [] }

let test_psm_construction () =
  let psm = Psm.empty (empty_world ()) in
  let psm, s0 = Psm.add_state psm (Assertion.Until (0, 1)) (attr 1. 5) in
  let psm, s1 = Psm.add_state psm (Assertion.Until (1, 0)) (attr 2. 5) in
  let psm = Psm.add_transition psm ~src:s0 ~guard:1 ~dst:s1 in
  let psm = Psm.add_transition psm ~src:s0 ~guard:1 ~dst:s1 in
  let psm = Psm.add_initial psm s0 in
  check_int "states" 2 (Psm.state_count psm);
  check_int "transitions deduped" 1 (Psm.transition_count psm);
  check_int "successors" 1 (List.length (Psm.successors psm s0));
  check_int "predecessors" 1 (List.length (Psm.predecessors psm s1));
  Alcotest.(check (list int)) "initial" [ s0 ] (Psm.initial psm);
  check_int "machines" 1 (Psm.machine_count psm)

let test_psm_union () =
  let table = empty_world () in
  let one () =
    let psm = Psm.empty table in
    let psm, s = Psm.add_state psm (Assertion.Until (0, 1)) (attr 1. 3) in
    Psm.add_initial psm s
  in
  let u = Psm.union [ one (); one (); one () ] in
  check_int "states" 3 (Psm.state_count u);
  check_int "machines" 3 (Psm.machine_count u);
  check_int "initials" 3 (List.length (Psm.initial u))

let test_psm_output_eval () =
  Alcotest.(check (float 1e-9)) "const" 5. (Psm.eval_output (Psm.Const 5.) ~hamming:100.);
  Alcotest.(check (float 1e-9)) "affine" 17.
    (Psm.eval_output (Psm.Affine { slope = 1.5; intercept = 2. }) ~hamming:10.)

(* ---------- the XU automaton (paper Fig. 5) ---------- *)

let test_xu_fig5_walkthrough () =
  (* Γ = a a a b b b c d: the paper's example sequence. *)
  let _, _, gamma, _ = world [ 0; 0; 0; 1; 1; 1; 2; 3 ] (List.init 8 (fun _ -> 1.)) in
  let xu = Xu.initialize gamma in
  (match Xu.get_assertion xu with
  | Some (Xu.Until (p, q), 0, 2) -> check_int "a U b" 1 (q - p)
  | other -> Alcotest.failf "first pattern wrong: %s" (match other with None -> "none" | Some _ -> "mismatch"));
  (match Xu.get_assertion xu with
  | Some (Xu.Until (1, 2), 3, 5) -> ()
  | _ -> Alcotest.fail "second pattern wrong");
  (match Xu.get_assertion xu with
  | Some (Xu.Next (2, 3), 6, 6) -> ()
  | _ -> Alcotest.fail "third pattern wrong");
  Alcotest.(check bool) "exhausted" true (Xu.get_assertion xu = None);
  Alcotest.(check (option int)) "trailing instant" (Some 7) (Xu.trailing_stop xu)

let test_xu_pure_next_sequence () =
  let _, _, gamma, _ = world [ 0; 1; 2; 3; 4 ] (List.init 5 (fun _ -> 1.)) in
  let xu = Xu.initialize gamma in
  let rec collect acc =
    match Xu.get_assertion xu with Some t -> collect (t :: acc) | None -> List.rev acc
  in
  let triplets = collect [] in
  check_int "4 next patterns" 4 (List.length triplets);
  List.iteri
    (fun i (pattern, start, stop) ->
      check_int "start" i start;
      check_int "stop" i stop;
      match pattern with
      | Xu.Next (p, q) ->
          check_int "lhs" i p;
          check_int "rhs" (i + 1) q
      | Xu.Until _ -> Alcotest.fail "expected next")
    triplets

let test_xu_single_run () =
  let _, _, gamma, _ = world [ 5; 5; 5; 5 ] [ 1.; 1.; 1.; 1. ] in
  let xu = Xu.initialize gamma in
  Alcotest.(check bool) "no assertion" true (Xu.get_assertion xu = None);
  Alcotest.(check (option int)) "everything trailing" (Some 3) (Xu.trailing_stop xu)

(* ---------- PSMGenerator ---------- *)

let test_generator_fig5_chain () =
  let _, _, gamma, delta =
    world [ 0; 0; 0; 1; 1; 1; 2; 3 ]
      [ 3.349; 3.339; 3.353; 1.902; 1.906; 1.944; 3.350; 3.343 ]
  in
  let table = Prop_trace.table gamma in
  let psm = Generator.generate (Psm.empty table) ~trace:0 gamma delta in
  check_int "3 states" 3 (Psm.state_count psm);
  check_int "2 transitions" 2 (Psm.transition_count psm);
  check_int "1 machine" 1 (Psm.machine_count psm);
  let states = Psm.states psm in
  let s0 = List.nth states 0 and s1 = List.nth states 1 and s2 = List.nth states 2 in
  check_bool "s0 assertion" true (Assertion.equal s0.Psm.assertion (Assertion.Until (0, 1)));
  check_bool "s1 assertion" true (Assertion.equal s1.Psm.assertion (Assertion.Until (1, 2)));
  check_bool "s2 assertion" true (Assertion.equal s2.Psm.assertion (Assertion.Next (2, 3)));
  (* Power attributes match the paper's intervals; the final state covers
     [6,7] (n = 2). *)
  Alcotest.(check (float 1e-6)) "mu0" 3.347 s0.Psm.attr.Power_attr.mu;
  Alcotest.(check (float 1e-6)) "mu1" 1.917333333 s1.Psm.attr.Power_attr.mu;
  check_int "n2 covers trailing instant" 2 s2.Psm.attr.Power_attr.n;
  (* Transition guards are the entry propositions (Fig. 5: p_b then p_c). *)
  (match Psm.transitions psm with
  | [ t1; t2 ] ->
      check_int "guard 1" 1 t1.Psm.guard;
      check_int "guard 2" 2 t2.Psm.guard
  | _ -> Alcotest.fail "expected two transitions");
  (* Initial state recorded. *)
  Alcotest.(check (list int)) "initial" [ s0.Psm.id ] (Psm.initial psm)

let test_generator_long_trailing_run_gets_own_state () =
  (* Γ = a a a b b b b b: the trailing b-run is 5 instants; it must become
     its own absorbing Until(b,b) state, not pollute the a-state. *)
  let _, _, gamma, delta =
    world [ 0; 0; 0; 1; 1; 1; 1; 1 ] [ 1.; 1.; 1.; 9.; 9.; 9.; 9.; 9. ]
  in
  let table = Prop_trace.table gamma in
  let psm = Generator.generate (Psm.empty table) ~trace:0 gamma delta in
  check_int "2 states" 2 (Psm.state_count psm);
  let states = Psm.states psm in
  let s0 = List.nth states 0 and s1 = List.nth states 1 in
  Alcotest.(check (float 1e-9)) "a-state clean" 1. s0.Psm.attr.Power_attr.mu;
  Alcotest.(check (float 1e-9)) "b-state clean" 9. s1.Psm.attr.Power_attr.mu;
  check_bool "absorbing assertion" true
    (Assertion.equal s1.Psm.assertion (Assertion.Until (1, 1)))

let test_generator_validates () =
  let _, _, gamma, _ = world [ 0; 1 ] [ 1.; 1. ] in
  let table = Prop_trace.table gamma in
  Alcotest.(check bool) "length mismatch" true
    (try
       ignore (Generator.generate (Psm.empty table) ~trace:0 gamma (PT.of_array [| 1. |]));
       false
     with Invalid_argument _ -> true)

let test_generator_every_instant_attributed () =
  (* The union of state intervals tiles [0, n-1] exactly. *)
  let values = [ 0; 0; 1; 1; 1; 2; 3; 3; 3; 3; 0; 0; 4 ] in
  let powers = List.map (fun v -> float_of_int (v + 1)) values in
  let _, _, gamma, delta = world values powers in
  let table = Prop_trace.table gamma in
  let psm = Generator.generate (Psm.empty table) ~trace:0 gamma delta in
  let intervals =
    List.concat_map (fun (s : Psm.state) -> s.Psm.attr.Power_attr.intervals) (Psm.states psm)
    |> List.sort (fun a b -> Int.compare a.Power_attr.start b.Power_attr.start)
  in
  let covered =
    List.fold_left
      (fun acc (iv : Power_attr.interval) ->
        match acc with
        | Some expected when iv.Power_attr.start = expected -> Some (iv.Power_attr.stop + 1)
        | _ -> None)
      (Some 0) intervals
  in
  Alcotest.(check (option int)) "tiles trace" (Some (List.length values)) covered

(* ---------- mergeability ---------- *)

let test_merge_case1 () =
  let a = attr 10. 1 and b = attr 10.5 1 and c = attr 20. 1 in
  check_bool "case" true (Merge.case_of a b = Merge.Case1_next_next);
  check_bool "close next states merge" true (Merge.mergeable Merge.default a b);
  check_bool "distant next states do not" false (Merge.mergeable Merge.default a c)

let test_merge_case2 () =
  let a = { Power_attr.mu = 10.; sigma = 1.; n = 200; intervals = [] } in
  let b = { Power_attr.mu = 10.05; sigma = 1.1; n = 180; intervals = [] } in
  let far = { Power_attr.mu = 14.; sigma = 1.; n = 200; intervals = [] } in
  check_bool "case" true (Merge.case_of a b = Merge.Case2_until_until);
  check_bool "same distribution merges" true (Merge.mergeable Merge.default a b);
  check_bool "distinct does not" false (Merge.mergeable Merge.default a far)

let test_merge_case3 () =
  let pop = { Power_attr.mu = 10.; sigma = 1.; n = 100; intervals = [] } in
  let near = attr 10.8 1 and far = attr 25. 1 in
  check_bool "case" true (Merge.case_of pop near = Merge.Case3_until_next);
  check_bool "plausible sample merges" true (Merge.mergeable Merge.default pop near);
  check_bool "implausible does not" false (Merge.mergeable Merge.default pop far);
  (* symmetric argument order *)
  check_bool "symmetric" true (Merge.mergeable Merge.default near pop)

let test_merge_practical_equivalence () =
  (* Huge n makes Welch reject a 2% difference; practical equivalence
     overrides, the paper-letter configuration does not. *)
  let a = { Power_attr.mu = 100.; sigma = 1.; n = 100000; intervals = [] } in
  let b = { Power_attr.mu = 102.; sigma = 1.; n = 100000; intervals = [] } in
  check_bool "default merges" true (Merge.mergeable Merge.default a b);
  check_bool "pure t-test rejects" false
    (Merge.mergeable { Merge.default with Merge.practical_equivalence = false } a b)

(* ---------- simplify (paper Fig. 6a) ---------- *)

let chain_psm table specs =
  (* specs: (assertion, mu, sigma, n) list; builds a chain with transitions
     guarded by each next state's entry proposition. *)
  let psm = Psm.empty table in
  let psm, ids =
    List.fold_left
      (fun (psm, ids) (assertion, mu, sigma, n) ->
        let psm, id =
          Psm.add_state psm assertion { Power_attr.mu; sigma; n; intervals = [] }
        in
        (psm, id :: ids))
      (psm, []) specs
  in
  let ids = List.rev ids in
  let psm =
    List.fold_left2
      (fun psm (src, dst) (assertion, _, _, _) ->
        let entry = List.hd (Assertion.entry_props assertion) in
        Psm.add_transition psm ~src ~guard:entry ~dst)
      psm
      (List.combine (List.filteri (fun i _ -> i < List.length ids - 1) ids) (List.tl ids))
      (List.tl specs)
  in
  (Psm.add_initial psm (List.hd ids), ids)

let test_simplify_merges_adjacent () =
  let table = empty_world () in
  let psm, _ =
    chain_psm table
      [ (Assertion.Until (0, 1), 5., 0.1, 40);
        (Assertion.Until (1, 2), 5.02, 0.1, 40);
        (Assertion.Until (2, 3), 50., 0.1, 40) ]
  in
  let simplified = Simplify.simplify psm in
  check_int "merged to 2" 2 (Psm.state_count simplified);
  check_int "one transition" 1 (Psm.transition_count simplified);
  (* The merged state carries the sequential assertion {p0 U p1; p1 U p2}. *)
  let merged =
    List.find
      (fun (s : Psm.state) ->
        match s.Psm.assertion with Assertion.Seq _ -> true | _ -> false)
      (Psm.states simplified)
  in
  check_bool "cascade assertion" true
    (Assertion.equal merged.Psm.assertion
       (Assertion.Seq [ Assertion.Until (0, 1); Assertion.Until (1, 2) ]));
  check_int "n accumulated" 80 merged.Psm.attr.Power_attr.n

let test_simplify_preserves_total_n () =
  let table = empty_world () in
  let psm, _ =
    chain_psm table
      [ (Assertion.Until (0, 1), 5., 0.1, 10);
        (Assertion.Until (1, 2), 5., 0.1, 20);
        (Assertion.Until (2, 3), 5., 0.1, 30);
        (Assertion.Until (3, 4), 90., 0.1, 40) ]
  in
  let simplified = Simplify.simplify psm in
  let total p =
    List.fold_left (fun acc (s : Psm.state) -> acc + s.Psm.attr.Power_attr.n) 0 (Psm.states p)
  in
  check_int "sum n preserved" (total psm) (total simplified);
  check_int "3 mergeable collapse" 2 (Psm.state_count simplified)

let test_simplify_keeps_distinct () =
  let table = empty_world () in
  let psm, _ =
    chain_psm table
      [ (Assertion.Until (0, 1), 1., 0.01, 40);
        (Assertion.Until (1, 2), 50., 0.01, 40);
        (Assertion.Until (2, 3), 1., 0.01, 40) ]
  in
  let simplified = Simplify.simplify psm in
  check_int "nothing merged" 3 (Psm.state_count simplified)

let test_simplify_traced_mapping () =
  let table = empty_world () in
  let psm, ids =
    chain_psm table
      [ (Assertion.Until (0, 1), 5., 0.1, 40);
        (Assertion.Until (1, 2), 5., 0.1, 40);
        (Assertion.Until (2, 3), 50., 0.1, 40) ]
  in
  let simplified, resolve = Simplify.simplify_traced psm in
  let merged_ids = List.map (fun (s : Psm.state) -> s.Psm.id) (Psm.states simplified) in
  (match ids with
  | [ a; b; c ] ->
      check_bool "a and b map together" true (resolve a = resolve b);
      check_bool "c maps apart" true (resolve c <> resolve a);
      check_int "c keeps its own samples" 40
        (Psm.state simplified (resolve c)).Psm.attr.Power_attr.n;
      check_int "a+b samples pooled" 80
        (Psm.state simplified (resolve a)).Psm.attr.Power_attr.n;
      check_bool "mapped ids exist" true
        (List.mem (resolve a) merged_ids && List.mem (resolve c) merged_ids)
  | _ -> Alcotest.fail "expected 3 ids")

(* ---------- join (paper Fig. 6b) ---------- *)

let test_join_merges_across_machines () =
  let table = empty_world () in
  let mk mu =
    let psm, _ =
      chain_psm table
        [ (Assertion.Until (0, 1), mu, 0.1, 40); (Assertion.Until (1, 0), 99., 0.1, 40) ]
    in
    psm
  in
  let union = Psm.union [ mk 5.; mk 5.01 ] in
  check_int "4 states before" 4 (Psm.state_count union);
  let joined = Join.join union in
  check_int "2 states after" 2 (Psm.state_count joined);
  check_int "1 machine after" 1 (Psm.machine_count joined);
  (* π multiplicity: both initial entries now name the merged state. *)
  check_int "initial multiplicity" 2 (List.length (Psm.initial joined));
  (* The merged low-power state has two components (one per member). *)
  let low =
    List.find (fun (s : Psm.state) -> s.Psm.attr.Power_attr.mu < 50.) (Psm.states joined)
  in
  check_int "components" 2 (List.length low.Psm.components)

let test_join_alternative_assertion () =
  let table = empty_world () in
  let mk assertion =
    let psm = Psm.empty table in
    let psm, id = Psm.add_state psm assertion (attr 5. 40) in
    Psm.add_initial psm id
  in
  let union = Psm.union [ mk (Assertion.Until (0, 1)); mk (Assertion.Until (2, 3)) ] in
  let joined = Join.join union in
  check_int "merged" 1 (Psm.state_count joined);
  let s = List.hd (Psm.states joined) in
  check_bool "alternative" true
    (Assertion.equal s.Psm.assertion
       (Assertion.Alt [ Assertion.Until (0, 1); Assertion.Until (2, 3) ]))

let test_join_never_increases_states () =
  let table = empty_world () in
  let psm, _ =
    chain_psm table
      [ (Assertion.Until (0, 1), 1., 0.1, 40); (Assertion.Until (1, 2), 30., 0.1, 40);
        (Assertion.Until (2, 3), 60., 0.1, 40) ]
  in
  let joined = Join.join psm in
  check_bool "monotone" true (Psm.state_count joined <= Psm.state_count psm)

let test_join_self_loop_from_internal_edge () =
  (* Two chained states merged by join (not adjacent-mergeable via
     simplify's uniqueness rules is bypassed by calling join directly):
     the edge between them becomes a self-loop. *)
  let table = empty_world () in
  let psm, _ =
    chain_psm table
      [ (Assertion.Until (0, 1), 5., 0.1, 40); (Assertion.Until (1, 0), 5.01, 0.1, 40) ]
  in
  let joined = Join.join psm in
  check_int "one state" 1 (Psm.state_count joined);
  (match Psm.transitions joined with
  | [ t ] -> check_bool "self loop" true (t.Psm.src = t.Psm.dst)
  | other -> Alcotest.failf "expected one self-loop, got %d" (List.length other))

(* ---------- optimize ---------- *)

let make_regression_world () =
  (* One signal toggling a variable number of bits each cycle; power =
     4 + 2 * hamming + tiny noise: a perfect regression target. *)
  let iface = Interface.create [ Signal.input "d" 8; Signal.output "o" 1 ] in
  let values =
    Array.init 200 (fun i -> [ 0x00; 0x01; 0x07; 0x0F; 0x55; 0xFF ] |> fun l ->
      List.nth l (i mod 6))
  in
  let samples =
    Array.map (fun v -> [| Bits.of_int ~width:8 v; Bits.of_bool false |]) values
  in
  let trace = FT.of_samples iface samples in
  let hd = FT.input_hamming_series trace in
  let powers = Array.mapi (fun i h -> 4. +. (2. *. h) +. (0.001 *. float_of_int (i mod 3))) hd in
  (trace, PT.of_array powers)

let test_optimize_upgrades_correlated_state () =
  let trace, power = make_regression_world () in
  let iface = FT.interface trace in
  let table = Table.create (Vocabulary.create iface []) in
  (* With an empty vocabulary everything is one proposition: a single
     self-until state covering the whole trace. *)
  let gamma = Prop_trace.of_functional table trace in
  let psm = Generator.generate (Psm.empty table) ~trace:0 gamma power in
  check_int "one state" 1 (Psm.state_count psm);
  let optimized, reports =
    Optimize.optimize ~traces:[| trace |] ~powers:[| power |] psm
  in
  (match reports with
  | [ r ] ->
      check_bool "upgraded" true r.Optimize.upgraded;
      check_bool "strong correlation" true (r.Optimize.correlation > 0.95)
  | _ -> Alcotest.fail "expected one report");
  let s = List.hd (Psm.states optimized) in
  (match s.Psm.output with
  | Psm.Affine { slope; intercept } ->
      Alcotest.(check (float 0.05)) "slope" 2. slope;
      Alcotest.(check (float 0.1)) "intercept" 4. intercept
  | Psm.Const _ -> Alcotest.fail "expected affine output")

let test_optimize_skips_uncorrelated () =
  (* High-variance power uncorrelated with input switching: candidate but
     not upgraded. *)
  let iface = Interface.create [ Signal.input "d" 8; Signal.output "o" 1 ] in
  let samples = Array.make 100 [| Bits.of_int ~width:8 0xAA; Bits.of_bool false |] in
  let trace = FT.of_samples iface samples in
  let powers = Array.init 100 (fun i -> 10. +. float_of_int ((i * 31) mod 17)) in
  let power = PT.of_array powers in
  let table = Table.create (Vocabulary.create iface []) in
  let gamma = Prop_trace.of_functional table trace in
  let psm = Generator.generate (Psm.empty table) ~trace:0 gamma power in
  let optimized, reports = Optimize.optimize ~traces:[| trace |] ~powers:[| power |] psm in
  (match reports with
  | [ r ] -> check_bool "not upgraded" false r.Optimize.upgraded
  | _ -> Alcotest.fail "expected one report");
  let s = List.hd (Psm.states optimized) in
  check_bool "still constant" true (match s.Psm.output with Psm.Const _ -> true | _ -> false)

(* ---------- single-chain simulation (Sec. III-C) ---------- *)

let test_sim_single_replays_training () =
  let values = [ 0; 0; 0; 1; 1; 1; 2; 3; 3; 3 ] in
  let powers = [ 5.; 5.; 5.; 2.; 2.; 2.; 9.; 4.; 4.; 4. ] in
  let _, trace, gamma, delta = world values powers in
  let table = Prop_trace.table gamma in
  let psm = Generator.generate (Psm.empty table) ~trace:0 gamma delta in
  let result = Sim_single.simulate psm trace in
  Alcotest.(check (list int)) "no desync" [] result.Sim_single.desyncs;
  Alcotest.(check (float 1e-9)) "fully synchronized" 1. result.Sim_single.synchronized_fraction;
  (* The estimate replays each state's mean. *)
  Alcotest.(check (float 1e-9)) "first state mean" 5. result.Sim_single.estimate.(0);
  Alcotest.(check (float 1e-9)) "second state mean" 2. result.Sim_single.estimate.(4)

let test_sim_single_desyncs_on_unknown () =
  (* Train on a-a-a-b..., test on a trace that jumps to an unseen prop:
     the PSM must lose sync and stay in its state (Sec. III-C). *)
  let values = [ 0; 0; 0; 1; 1; 1 ] in
  let powers = [ 5.; 5.; 5.; 2.; 2.; 2. ] in
  let _, _, gamma, delta = world values powers in
  let table = Prop_trace.table gamma in
  let psm = Generator.generate (Psm.empty table) ~trace:0 gamma delta in
  let iface = Vocabulary.interface (Table.vocabulary table) in
  let test_trace =
    FT.of_samples iface
      (Array.of_list
         (List.map
            (fun v -> [| Bits.of_int ~width:4 v; Bits.of_bool false |])
            [ 0; 0; 7; 7; 1; 1 ]))
  in
  let result = Sim_single.simulate psm test_trace in
  check_bool "desynced" true (List.length result.Sim_single.desyncs > 0);
  check_bool "records instants" true (List.mem 2 result.Sim_single.desyncs)

let test_sim_single_rejects_composites () =
  let table = empty_world () in
  let psm = Psm.empty table in
  let psm, id =
    Psm.add_state psm
      (Assertion.Seq [ Assertion.Until (0, 1); Assertion.Until (1, 2) ])
      (attr 1. 10)
  in
  let psm = Psm.add_initial psm id in
  let iface = Vocabulary.interface (Table.vocabulary table) in
  let trace = FT.of_samples iface [| [| Bits.zero 4; Bits.zero 1 |] |] in
  check_bool "raises" true
    (try
       ignore (Sim_single.simulate psm trace);
       false
     with Invalid_argument _ -> true)

(* ---------- dot export ---------- *)

let test_dot_renders () =
  let table = empty_world () in
  let psm, _ =
    chain_psm table
      [ (Assertion.Until (0, 1), 1e-6, 1e-8, 40); (Assertion.Until (1, 2), 2e-6, 1e-8, 40) ]
  in
  let dot = Psm_core.Dot.to_string ~name:"test" psm in
  check_bool "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "has edge" true (contains "->" dot);
  check_bool "labels guards" true (contains "label" dot)

let test_dot_escapes_hostile_names () =
  (* Quotes, backslashes, newlines, tabs and CRs in signal names (and the
     graph name) must never leak into the DOT output unescaped. *)
  let iface = Interface.create [ Signal.input "a\"b\\c\nd\te\rf" 1 ] in
  let atoms = [ Psm_mining.Atomic.eq_const 0 (Bits.of_bool true) ] in
  let table = Table.create (Vocabulary.create iface atoms) in
  let p_hi = Table.intern_row table [| true |] in
  let p_lo = Table.intern_row table [| false |] in
  let psm = Psm.empty table in
  let psm, s0 =
    Psm.add_state psm (Assertion.Until (p_hi, p_lo))
      { Power_attr.mu = 1e-6; sigma = 0.; n = 4; intervals = [] }
  in
  let psm, s1 =
    Psm.add_state psm (Assertion.Until (p_lo, p_hi))
      { Power_attr.mu = 2e-6; sigma = 0.; n = 4; intervals = [] }
  in
  let psm = Psm.add_transition psm ~src:s0 ~guard:p_lo ~dst:s1 in
  let psm = Psm.add_initial psm s0 in
  let dot = Psm_core.Dot.to_string ~name:"bad\"na\\me\r\nx\ty" psm in
  String.iter
    (fun c ->
      check_bool "no raw control characters besides newline" true
        (c = '\n' || Char.code c >= 0x20))
    dot;
  (* A raw newline or unescaped quote inside a label would leave a line
     with an odd number of quote characters. *)
  List.iter
    (fun line ->
      let quotes = ref 0 in
      String.iteri
        (fun i c ->
          if c = '"' then begin
            let backslashes = ref 0 in
            let j = ref (i - 1) in
            while !j >= 0 && line.[!j] = '\\' do
              incr backslashes;
              decr j
            done;
            if !backslashes mod 2 = 0 then incr quotes
          end)
        line;
      check_bool ("balanced quotes in: " ^ line) true (!quotes mod 2 = 0))
    (String.split_on_char '\n' dot);
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "quote escaped" true (contains "\\\"" dot);
  check_bool "backslash escaped" true (contains "\\\\" dot)

(* ---------- properties ---------- *)

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:60 ~name arb f)

let arb_prop_sequence =
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 2 80)
        (map (fun v -> v mod 6) (int_bound 5)))

(* Random assertion trees exercising the smart-constructor invariants:
   leaves over a small prop universe, Seq/Alt built through the raw
   constructors so [seq]/[alt] have real flattening work to do. *)
let gen_assertion =
  QCheck.Gen.(
    let leaf =
      map2
        (fun next (p, q) ->
          if next then Assertion.Next (p, q) else Assertion.Until (p, q))
        bool
        (pair (int_bound 4) (int_bound 4))
    in
    fix
      (fun self n ->
        if n = 0 then leaf
        else
          frequency
            [ (2, leaf);
              (1, map Assertion.seq (list_size (int_range 1 3) (self (n - 1))));
              (1, map Assertion.alt (list_size (int_range 1 3) (self (n - 1)))) ])
      2)

let arb_assertion_list =
  QCheck.make
    QCheck.Gen.(list_size (int_range 1 4) gen_assertion)
    ~print:(fun xs ->
      String.concat "; " (List.map (Assertion.to_string (Printf.sprintf "p%d")) xs))

let rec no_nested_seq = function
  | Assertion.Seq xs ->
      List.for_all (function Assertion.Seq _ -> false | x -> no_nested_seq x) xs
  | Assertion.Alt xs -> List.for_all no_nested_seq xs
  | Assertion.Until _ | Assertion.Next _ -> true

let rec no_nested_alt = function
  | Assertion.Alt xs ->
      List.for_all (function Assertion.Alt _ -> false | x -> no_nested_alt x) xs
  | Assertion.Seq xs -> List.for_all no_nested_alt xs
  | Assertion.Until _ | Assertion.Next _ -> true

let test_assertion_nested_entry_exit () =
  (* Seq of Alts: entry comes from every branch of the FIRST element,
     exit from every branch of the LAST. *)
  let a =
    Assertion.seq
      [ Assertion.alt [ Assertion.Until (0, 1); Assertion.Next (2, 3) ];
        Assertion.Until (1, 2);
        Assertion.alt [ Assertion.Until (4, 5); Assertion.Next (6, 7) ] ]
  in
  Alcotest.(check (list int)) "entries from the first Alt" [ 0; 2 ]
    (Assertion.entry_props a);
  Alcotest.(check (list int)) "exits from the last Alt" [ 5; 7 ]
    (Assertion.exit_props a);
  (* An Alt of Seqs: union over branches at both ends. *)
  let b =
    Assertion.alt
      [ Assertion.seq [ Assertion.Next (0, 1); Assertion.Until (1, 2) ];
        Assertion.Until (3, 4) ]
  in
  Alcotest.(check (list int)) "alt entries union" [ 0; 3 ] (Assertion.entry_props b);
  Alcotest.(check (list int)) "alt exits union" [ 2; 4 ] (Assertion.exit_props b);
  List.iter
    (fun build ->
      Alcotest.check_raises "empty list rejected"
        (Invalid_argument
           (match build with
           | `Seq -> "Assertion.seq: empty sequence"
           | `Alt -> "Assertion.alt: empty alternative"))
        (fun () ->
          ignore (match build with `Seq -> Assertion.seq [] | `Alt -> Assertion.alt [])))
    [ `Seq; `Alt ]

let properties =
  [ prop "seq flattens and passes singletons through" arb_assertion_list
      (fun parts ->
        let built = Assertion.seq parts in
        no_nested_seq built
        &&
        match parts with
        | [ single ] -> Assertion.equal built single
        | _ -> (
            (* Flattening preserves the leaf-level sequential order. *)
            let rec seq_leaves a =
              match a with Assertion.Seq xs -> List.concat_map seq_leaves xs | x -> [ x ]
            in
            List.concat_map seq_leaves parts = seq_leaves built
            &&
            match built with
            | Assertion.Seq xs -> List.length xs >= 2
            | _ -> List.length (List.concat_map seq_leaves parts) = 1));
    prop "alt flattens, dedups and sorts" arb_assertion_list (fun parts ->
        let built = Assertion.alt parts in
        no_nested_alt built
        && Assertion.equal built (Assertion.alt (parts @ parts))
        && (match built with
           | Assertion.Alt xs ->
               List.sort_uniq Assertion.compare xs = xs && List.length xs >= 2
           | _ -> true)
        &&
        match parts with
        | [ single ] -> Assertion.equal built single
        | _ -> true);
    prop "generator intervals tile any trace" arb_prop_sequence (fun values ->
        QCheck.assume (values <> []);
        let powers = List.map (fun v -> float_of_int v +. 1.) values in
        let _, _, gamma, delta = world values powers in
        let table = Prop_trace.table gamma in
        let psm = Generator.generate (Psm.empty table) ~trace:0 gamma delta in
        let intervals =
          List.concat_map
            (fun (s : Psm.state) -> s.Psm.attr.Power_attr.intervals)
            (Psm.states psm)
          |> List.sort (fun a b -> Int.compare a.Power_attr.start b.Power_attr.start)
        in
        let covered =
          List.fold_left
            (fun acc (iv : Power_attr.interval) ->
              match acc with
              | Some e when iv.Power_attr.start = e -> Some (iv.Power_attr.stop + 1)
              | _ -> None)
            (Some 0) intervals
        in
        covered = Some (List.length values));
    prop "generator chains replay without desync" arb_prop_sequence (fun values ->
        QCheck.assume (List.length values >= 2);
        let powers = List.map (fun v -> float_of_int v +. 1.) values in
        let _, trace, gamma, delta = world values powers in
        let table = Prop_trace.table gamma in
        let psm = Generator.generate (Psm.empty table) ~trace:0 gamma delta in
        let result = Sim_single.simulate psm trace in
        result.Sim_single.desyncs = []);
    prop "simplify preserves total n" arb_prop_sequence (fun values ->
        QCheck.assume (values <> []);
        let powers = List.map (fun v -> float_of_int (v / 3) +. 1.) values in
        let _, _, gamma, delta = world values powers in
        let table = Prop_trace.table gamma in
        let psm = Generator.generate (Psm.empty table) ~trace:0 gamma delta in
        let simplified = Simplify.simplify psm in
        let total p =
          List.fold_left
            (fun acc (s : Psm.state) -> acc + s.Psm.attr.Power_attr.n)
            0 (Psm.states p)
        in
        total psm = total simplified);
    prop "join monotone on state count" arb_prop_sequence (fun values ->
        QCheck.assume (values <> []);
        let powers = List.map (fun v -> float_of_int (v / 2) +. 1.) values in
        let _, _, gamma, delta = world values powers in
        let table = Prop_trace.table gamma in
        let psm = Generator.generate (Psm.empty table) ~trace:0 gamma delta in
        let simplified = Simplify.simplify psm in
        let joined = Join.join simplified in
        Psm.state_count joined <= Psm.state_count simplified
        && Psm.machine_count joined >= 1);
    prop "merge is symmetric"
      (QCheck.pair (QCheck.pair (QCheck.float_range 0.1 100.) (QCheck.int_range 1 50))
         (QCheck.pair (QCheck.float_range 0.1 100.) (QCheck.int_range 1 50)))
      (fun ((mu1, n1), (mu2, n2)) ->
        let a = { Power_attr.mu = mu1; sigma = mu1 /. 10.; n = n1; intervals = [] } in
        let b = { Power_attr.mu = mu2; sigma = mu2 /. 10.; n = n2; intervals = [] } in
        Merge.mergeable Merge.default a b = Merge.mergeable Merge.default b a) ]

let suite =
  ( "core",
    [ Alcotest.test_case "assertion constructors" `Quick test_assertion_smart_constructors;
      Alcotest.test_case "assertion entry/exit" `Quick test_assertion_entry_exit;
      Alcotest.test_case "assertion nested entry/exit" `Quick
        test_assertion_nested_entry_exit;
      Alcotest.test_case "assertion props/pp" `Quick test_assertion_props_and_pp;
      Alcotest.test_case "assertion compare" `Quick test_assertion_compare_total;
      Alcotest.test_case "attr of interval" `Quick test_attr_of_interval;
      Alcotest.test_case "attr merge exact" `Quick test_attr_merge_exact;
      Alcotest.test_case "relative sigma" `Quick test_relative_sigma;
      Alcotest.test_case "psm construction" `Quick test_psm_construction;
      Alcotest.test_case "psm union" `Quick test_psm_union;
      Alcotest.test_case "psm outputs" `Quick test_psm_output_eval;
      Alcotest.test_case "XU Fig.5 walkthrough" `Quick test_xu_fig5_walkthrough;
      Alcotest.test_case "XU pure next" `Quick test_xu_pure_next_sequence;
      Alcotest.test_case "XU single run" `Quick test_xu_single_run;
      Alcotest.test_case "generator Fig.5 chain" `Quick test_generator_fig5_chain;
      Alcotest.test_case "generator trailing run" `Quick
        test_generator_long_trailing_run_gets_own_state;
      Alcotest.test_case "generator validates" `Quick test_generator_validates;
      Alcotest.test_case "generator attributes all instants" `Quick
        test_generator_every_instant_attributed;
      Alcotest.test_case "merge case 1" `Quick test_merge_case1;
      Alcotest.test_case "merge case 2" `Quick test_merge_case2;
      Alcotest.test_case "merge case 3" `Quick test_merge_case3;
      Alcotest.test_case "practical equivalence" `Quick test_merge_practical_equivalence;
      Alcotest.test_case "simplify merges adjacent" `Quick test_simplify_merges_adjacent;
      Alcotest.test_case "simplify preserves n" `Quick test_simplify_preserves_total_n;
      Alcotest.test_case "simplify keeps distinct" `Quick test_simplify_keeps_distinct;
      Alcotest.test_case "simplify traced" `Quick test_simplify_traced_mapping;
      Alcotest.test_case "join across machines" `Quick test_join_merges_across_machines;
      Alcotest.test_case "join alternatives" `Quick test_join_alternative_assertion;
      Alcotest.test_case "join monotone" `Quick test_join_never_increases_states;
      Alcotest.test_case "join self-loop" `Quick test_join_self_loop_from_internal_edge;
      Alcotest.test_case "optimize upgrades" `Quick test_optimize_upgrades_correlated_state;
      Alcotest.test_case "optimize skips uncorrelated" `Quick test_optimize_skips_uncorrelated;
      Alcotest.test_case "sim replays training" `Quick test_sim_single_replays_training;
      Alcotest.test_case "sim desyncs on unknown" `Quick test_sim_single_desyncs_on_unknown;
      Alcotest.test_case "sim rejects composites" `Quick test_sim_single_rejects_composites;
      Alcotest.test_case "dot renders" `Quick test_dot_renders;
      Alcotest.test_case "dot escapes hostile names" `Quick
        test_dot_escapes_hostile_names ]
    @ properties )
