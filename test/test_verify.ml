(* Tests for Psm_verify: the exact theory decision procedure (unit cases
   plus QCheck exactness against brute-force enumeration), the four
   symbolic model checks with seeded violations, witness replay, and the
   power-label-aware bisimulation diff. *)

module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface
module Atomic = Psm_mining.Atomic
module Vocabulary = Psm_mining.Vocabulary
module Table = Psm_mining.Prop_trace.Table
module Assertion = Psm_core.Assertion
module Psm = Psm_core.Psm
module Power_attr = Psm_core.Power_attr
module Theory = Psm_verify.Theory
module Verify = Psm_verify.Verify
module Flow = Psm_flow.Flow
module Workloads = Psm_ips.Workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- theory: unit cases ---------- *)

(* Two 3-bit signals and a 1-bit flag. *)
let iface3 () =
  Interface.create
    [ Signal.input "x" 3; Signal.input "y" 3; Signal.input "flag" 1 ]

let c3 n = Bits.of_int ~width:3 n
let eq s n = (Atomic.eq_const s (c3 n), true)
let ne s n = (Atomic.eq_const s (c3 n), false)
let lt_c s n = ({ Atomic.lhs = s; cmp = Atomic.Lt; rhs = Atomic.Const (c3 n) }, true)
let gt_c s n = ({ Atomic.lhs = s; cmp = Atomic.Gt; rhs = Atomic.Const (c3 n) }, true)

let is_sat = function Theory.Sat _ -> true | Theory.Unsat _ -> false

let sat_witness = function
  | Theory.Sat w -> w
  | Theory.Unsat _ -> Alcotest.fail "expected Sat"

let unsat_core = function
  | Theory.Unsat core -> core
  | Theory.Sat _ -> Alcotest.fail "expected Unsat"

let test_theory_const_conflict () =
  let iface = iface3 () in
  let core = unsat_core (Theory.solve iface [ eq 0 3; eq 0 5 ]) in
  check_int "minimal core has both literals" 2 (List.length core);
  (* A satisfiable extra literal must not survive minimization. *)
  let core' = unsat_core (Theory.solve iface [ eq 1 2; eq 0 3; eq 0 5 ]) in
  check_int "padding literal dropped from core" 2 (List.length core')

let test_theory_interval_squeeze () =
  let iface = iface3 () in
  let w = sat_witness (Theory.solve iface [ lt_c 0 2; gt_c 0 0 ]) in
  check_bool "0 < x < 2 forces x = 1" true (Bits.equal w.(0) (c3 1));
  check_bool "unmentioned signal defaults to zero" true (Bits.is_zero w.(1));
  check_int "witness covers the whole interface" 3 (Array.length w)

let test_theory_hole () =
  let iface = iface3 () in
  let w = sat_witness (Theory.solve iface [ ne 0 0; lt_c 0 2 ]) in
  check_bool "x ≠ 0 ∧ x < 2 forces x = 1" true (Bits.equal w.(0) (c3 1));
  check_bool "full hole coverage is unsat" false
    (is_sat
       (Theory.solve iface
          [ ne 0 0; ne 0 1; ne 0 2; ne 0 3; ne 0 4; ne 0 5; ne 0 6; ne 0 7 ]))

let test_theory_order_cycle () =
  let iface = iface3 () in
  let xy = (Atomic.compare_signals Atomic.Lt 0 1, true) in
  let yx = (Atomic.compare_signals Atomic.Lt 1 0, true) in
  check_bool "x < y ∧ y < x unsat" false (is_sat (Theory.solve iface [ xy; yx ]));
  let w = sat_witness (Theory.solve iface [ xy ]) in
  check_bool "x < y satisfied" true (Bits.ult w.(0) w.(1));
  (* Non-strict cycle forces equality. *)
  let ge_xy = (Atomic.compare_signals Atomic.Lt 0 1, false) in
  let ge_yx = (Atomic.compare_signals Atomic.Lt 1 0, false) in
  let w = sat_witness (Theory.solve iface [ ge_xy; ge_yx; eq 0 4 ]) in
  check_bool "x ≥ y ∧ y ≥ x merges the signals" true (Bits.equal w.(1) (c3 4))

let test_theory_equality_merge () =
  let iface = iface3 () in
  let xeqy = (Atomic.compare_signals Atomic.Eq 0 1, true) in
  check_bool "x = y ∧ x = 3 ∧ y = 5 unsat" false
    (is_sat (Theory.solve iface [ xeqy; eq 0 3; eq 1 5 ]));
  let w = sat_witness (Theory.solve iface [ xeqy; eq 0 3 ]) in
  check_bool "y inherits the merged value" true (Bits.equal w.(1) (c3 3))

let test_theory_diseq_split () =
  let iface = iface3 () in
  let xney = (Atomic.compare_signals Atomic.Eq 0 1, false) in
  let w = sat_witness (Theory.solve iface [ xney ]) in
  check_bool "x ≠ y separated" false (Bits.equal w.(0) w.(1));
  (* Tight domains: x,y ∈ {6,7} and x ≠ y still satisfiable... *)
  let w = sat_witness (Theory.solve iface [ xney; gt_c 0 5; gt_c 1 5 ]) in
  check_bool "split finds the two-point solution" false (Bits.equal w.(0) w.(1));
  (* ... but a single point is not. *)
  check_bool "x ≠ y with singleton domains unsat" false
    (is_sat (Theory.solve iface [ xney; eq 0 7; eq 1 7 ]))

let test_theory_implies () =
  let iface = iface3 () in
  check_bool "x = 3 ⟹ x < 5" true (Theory.implies iface [ eq 0 3 ] (lt_c 0 5));
  check_bool "x < 5 ⟹̸ x = 3" false (Theory.implies iface [ lt_c 0 5 ] (eq 0 3))

let test_theory_validate () =
  let iface = iface3 () in
  check_bool "well-formed atom" true
    (Theory.validate iface (Atomic.eq_const 0 (c3 1)) = None);
  check_bool "signal out of range" true
    (Theory.validate iface (Atomic.eq_const 9 (c3 1)) <> None);
  check_bool "width mismatch" true
    (Theory.validate iface (Atomic.eq_const 0 (Bits.of_bool true)) <> None);
  check_bool "solve raises on ill-formed input" true
    (try
       ignore (Theory.solve iface [ (Atomic.eq_const 9 (c3 1), true) ]);
       false
     with Invalid_argument _ -> true)

(* ---------- theory: exactness by enumeration ---------- *)

(* Brute force over a tiny interface: 2 three-bit signals and 1 one-bit
   flag = 128 valuations, the ground truth the solver must match. *)
let all_valuations iface =
  let widths =
    List.init (Interface.arity iface) (fun i ->
        (Interface.signal iface i).Signal.width)
  in
  let rec expand = function
    | [] -> [ [] ]
    | w :: rest ->
        let tails = expand rest in
        List.concat_map
          (fun v -> List.map (fun tail -> Bits.of_int ~width:w v :: tail) tails)
          (List.init (1 lsl w) Fun.id)
  in
  List.map Array.of_list (expand widths)

let eval_literal (atom, polarity) sample = Atomic.eval atom sample = polarity

let gen_literal =
  let open QCheck.Gen in
  let cmp = oneofl [ Atomic.Eq; Atomic.Lt; Atomic.Gt ] in
  (* Constants stay in the signal's width: signals 0/1 are 3-bit, signal
     2 is the 1-bit flag. Var–var atoms only relate the two 3-bit
     signals (equal widths; self-comparison is rejected by the API). *)
  let const_atom =
    map3
      (fun s c v ->
        let width = if s = 2 then 1 else 3 in
        { Atomic.lhs = s; cmp = c;
          rhs = Atomic.Const (Bits.of_int ~width (v land ((1 lsl width) - 1))) })
      (int_range 0 2) cmp (int_range 0 7)
  in
  let var_atom =
    map2
      (fun c flip ->
        if flip then Atomic.compare_signals c 1 0
        else Atomic.compare_signals c 0 1)
      cmp bool
  in
  pair (frequency [ (3, const_atom); (1, var_atom) ]) bool

let gen_literals = QCheck.Gen.(list_size (int_range 1 6) gen_literal)

let arb_literals =
  QCheck.make gen_literals ~print:(fun lits ->
      String.concat " & "
        (List.map (Theory.literal_to_string (iface3 ())) lits))

let test_theory_exact =
  QCheck.Test.make ~count:300 ~name:"solver agrees with brute-force enumeration"
    arb_literals (fun literals ->
      let iface = iface3 () in
      let ground_sat =
        List.exists
          (fun v -> List.for_all (fun l -> eval_literal l v) literals)
          (all_valuations iface)
      in
      match Theory.solve iface literals with
      | Theory.Sat w ->
          ground_sat && List.for_all (fun l -> eval_literal l w) literals
      | Theory.Unsat core ->
          (not ground_sat)
          && List.for_all (fun l -> List.memq l literals) core
          && (* The core itself must be conflicting... *)
          (not
             (List.exists
                (fun v -> List.for_all (fun l -> eval_literal l v) core)
                (all_valuations iface)))
          && (* ... and 1-minimal: dropping any literal admits a model. *)
          List.for_all
            (fun dropped ->
              let rest = List.filter (fun l -> not (l == dropped)) core in
              List.exists
                (fun v -> List.for_all (fun l -> eval_literal l v) rest)
                (all_valuations iface))
            core)

(* ---------- model checks on seeded violations ---------- *)

let attr mu =
  { Power_attr.mu; sigma = 0.; n = 1;
    intervals = [ { Power_attr.trace = 0; start = 0; stop = 0 } ] }

(* 3-bit signal x; atoms x = 3 and x = 5. The all-true row is the
   seeded contradiction (x can't be 3 and 5 at once). *)
let contradictory_table () =
  let iface = Interface.create [ Signal.input "x" 3 ] in
  let voc =
    Vocabulary.create iface
      [ Atomic.eq_const 0 (c3 3); Atomic.eq_const 0 (c3 5) ]
  in
  let table = Table.create voc in
  let p_bad = Table.intern_row table [| true; true |] in
  let p_three = Table.intern_row table [| true; false |] in
  (table, p_bad, p_three)

let test_feasibility_finds_contradiction () =
  let table, p_bad, _ = contradictory_table () in
  let psm = Psm.empty table in
  let findings = Verify.feasibility psm in
  let errors = List.filter (fun f -> f.Verify.severity = Verify.Error) findings in
  check_int "one infeasible proposition" 1 (List.length errors);
  check_bool "flagged at the seeded prop" true
    ((List.hd errors).Verify.location = Verify.Prop p_bad)

let test_transition_feasibility () =
  let table, p_bad, p_three = contradictory_table () in
  let psm = Psm.empty table in
  let psm, s0 = Psm.add_state psm (Assertion.Until (p_three, p_bad)) (attr 1.) in
  let psm, s1 = Psm.add_state psm (Assertion.Until (p_three, p_three)) (attr 2.) in
  let psm = Psm.add_transition psm ~src:s0 ~guard:p_bad ~dst:s1 in
  let findings = Verify.feasibility psm in
  check_bool "unsatisfiable guard flagged at the transition" true
    (List.exists
       (fun f ->
         f.Verify.severity = Verify.Error
         && f.Verify.location
            = Verify.Transition { src = s0; guard = p_bad; dst = s1 })
       findings);
  (* A feasible guard that is no entry proposition of dst: p_three guards
     into s0 whose assertion starts with... p_three, so take s1 -> s0
     with guard p_bad? p_bad is infeasible; use a fresh feasible prop. *)
  let p_five = Table.intern_row table [| false; true |] in
  let psm = Psm.add_transition psm ~src:s1 ~guard:p_five ~dst:s0 in
  let findings = Verify.feasibility psm in
  check_bool "non-entry guard warned" true
    (List.exists
       (fun f ->
         f.Verify.severity = Verify.Warning
         && f.Verify.location
            = Verify.Transition { src = s1; guard = p_five; dst = s0 })
       findings)

let test_coverage_gap_with_witness () =
  (* One 1-bit signal, atom a = 1, only the true row interned: the a = 0
     half of the input space is a provable gap. *)
  let iface = Interface.create [ Signal.input "a" 1 ] in
  let voc = Vocabulary.create iface [ Atomic.eq_const 0 (Bits.of_bool true) ] in
  let table = Table.create voc in
  ignore (Table.intern_row table [| true |]);
  let psm = Psm.empty table in
  let findings = Verify.coverage psm in
  check_int "exactly one gap" 1 (List.length findings);
  let gap = List.hd findings in
  check_bool "gap is Info severity" true (gap.Verify.severity = Verify.Info);
  match gap.Verify.witness with
  | None -> Alcotest.fail "gap carries no witness"
  | Some w ->
      check_bool "witness lies outside every proposition" true
        (Table.classify table w = None)

let test_coverage_exhaustive_when_covered () =
  let iface = Interface.create [ Signal.input "a" 1 ] in
  let voc = Vocabulary.create iface [ Atomic.eq_const 0 (Bits.of_bool true) ] in
  let table = Table.create voc in
  ignore (Table.intern_row table [| true |]);
  ignore (Table.intern_row table [| false |]);
  check_int "both rows interned: no gaps" 0
    (List.length (Verify.coverage (Psm.empty table)))

let test_vacuity () =
  let table, _, p_three = contradictory_table () in
  let p_five = Table.intern_row table [| false; true |] in
  let psm = Psm.empty table in
  let psm, s_deg =
    Psm.add_state psm (Assertion.Until (p_three, p_three)) (attr 1.)
  in
  let psm, s_sub =
    Psm.add_state psm
      (Assertion.alt
         [ Assertion.Next (p_three, p_five); Assertion.Until (p_three, p_five) ])
      (attr 2.)
  in
  let psm, s_chain =
    Psm.add_state psm
      (Assertion.seq
         [ Assertion.Until (p_three, p_five); Assertion.Until (p_three, p_three) ])
      (attr 3.)
  in
  let findings = Verify.vacuity psm in
  let at id = List.filter (fun f -> f.Verify.location = Verify.State id) findings in
  check_bool "degenerate p U p reported" true (at s_deg <> []);
  check_bool "subsumed Alt branch reported" true
    (List.exists (fun f -> f.Verify.severity = Verify.Info) (at s_sub));
  check_bool "unchainable Seq reported" true
    (List.exists (fun f -> f.Verify.severity = Verify.Warning) (at s_chain))

let test_checks_total_on_ill_formed_vocabulary () =
  (* Atom references signal 5 of a 1-signal interface: every check must
     report, not raise. *)
  let iface = Interface.create [ Signal.input "a" 1 ] in
  let voc =
    Vocabulary.create iface [ Atomic.eq_const 5 (Bits.of_bool true) ]
  in
  let table = Table.create voc in
  let psm = Psm.empty table in
  List.iter
    (fun (name, check) ->
      match check psm with
      | [ f ] ->
          check_bool (name ^ " reports an error") true
            (f.Verify.severity = Verify.Error)
      | other ->
          Alcotest.failf "%s: expected one finding, got %d" name
            (List.length other))
    [
      ("feasibility", Verify.feasibility);
      ("disjointness", Verify.disjointness);
      ("coverage", fun psm -> Verify.coverage psm);
      ("vacuity", Verify.vacuity);
    ]

(* ---------- trained IPs: zero proved errors ---------- *)

let test_trained_ips_verify_clean () =
  List.iter
    (fun (name, make) ->
      let ip : Psm_ips.Ip.t = make () in
      let suite = Workloads.suite ~parts:3 ~total_length:6000 ~long:false name in
      let trained = Flow.train_on_ip ip suite in
      let report = Flow.verify trained in
      check_int (name ^ " verifies with zero proved errors") 0
        (List.length (Verify.errors report));
      check_bool (name ^ " proves disjointness pairs") true
        (report.Verify.stats.Verify.propositions < 2
        || report.Verify.stats.Verify.disjoint_pairs_proved > 0))
    [
      ("RAM", Psm_ips.Ram.create);
      ("MultSum", Psm_ips.Multsum.create);
      ("AES", Psm_ips.Aes.create);
      ("Camellia", Psm_ips.Camellia.create);
    ]

(* ---------- witness export and replay ---------- *)

let test_witness_replay () =
  let ip = Psm_ips.Ram.create () in
  let suite = Workloads.suite ~parts:3 ~total_length:6000 ~long:false "RAM" in
  let trained = Flow.train_on_ip ip suite in
  let report = Flow.verify trained in
  let ws = Verify.witnesses report in
  (* RAM's vocabulary never covers the full input space, so coverage
     yields at least one witnessed gap. *)
  check_bool "at least one witness exported" true (ws <> []);
  let stimulus = Workloads.of_witnesses report.Verify.interface ws in
  check_int "one stimulus cycle per witness" (List.length ws)
    (Array.length stimulus);
  let n_inputs = List.length (Interface.inputs report.Verify.interface) in
  Array.iter
    (fun cycle -> check_int "cycle drives every PI" n_inputs (Array.length cycle))
    stimulus;
  check_bool "arity mismatch rejected" true
    (try
       ignore (Workloads.of_witnesses report.Verify.interface [ [| Bits.of_bool true |] ]);
       false
     with Invalid_argument _ -> true)

let test_report_json_carries_witnesses () =
  let iface = Interface.create [ Signal.input "a" 1 ] in
  let voc = Vocabulary.create iface [ Atomic.eq_const 0 (Bits.of_bool true) ] in
  let table = Table.create voc in
  ignore (Table.intern_row table [| true |]);
  let report = Verify.run (Psm.empty table) in
  let json = Verify.json report in
  let contains needle =
    let n = String.length needle and h = String.length json in
    let rec go i = i + n <= h && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "json has a witness object" true (contains "\"witness\"");
  check_bool "json has witness values" true (contains "\"values\"");
  check_bool "json has rendered bindings" true (contains "\"bindings\"");
  check_bool "json has the stats block" true (contains "\"coverage_gaps\":1")

(* ---------- bisimulation diff ---------- *)

let two_state_psm ?(mu0 = 1.0) ?(mu1 = 5.0) ?(swap = false) () =
  let iface = Interface.create [ Signal.input "a" 1 ] in
  let voc = Vocabulary.create iface [ Atomic.eq_const 0 (Bits.of_bool true) ] in
  let table = Table.create voc in
  let p_t = Table.intern_row table [| true |] in
  let p_f = Table.intern_row table [| false |] in
  let psm = Psm.empty table in
  (* Optionally add the states in the opposite order: ids differ, the
     machine is the same. *)
  let add_a psm = Psm.add_state psm (Assertion.Until (p_t, p_f)) (attr mu0) in
  let add_b psm = Psm.add_state psm (Assertion.Until (p_f, p_t)) (attr mu1) in
  let psm, a, b =
    if swap then
      let psm, b = add_b psm in
      let psm, a = add_a psm in
      (psm, a, b)
    else
      let psm, a = add_a psm in
      let psm, b = add_b psm in
      (psm, a, b)
  in
  let psm = Psm.add_transition psm ~src:a ~guard:p_f ~dst:b in
  let psm = Psm.add_transition psm ~src:b ~guard:p_t ~dst:a in
  Psm.add_initial psm a

let test_equiv_self_and_renumbered () =
  let m = two_state_psm () in
  let r = Verify.equiv m m in
  check_bool "self-equivalent" true r.Verify.equivalent;
  check_int "two singleton-pair classes" 2 (List.length r.Verify.blocks);
  let r = Verify.equiv (two_state_psm ()) (two_state_psm ~swap:true ()) in
  check_bool "equivalence survives renumbering" true r.Verify.equivalent

let test_equiv_detects_power_change () =
  let r = Verify.equiv (two_state_psm ()) (two_state_psm ~mu1:9.0 ()) in
  check_bool "changed power label breaks equivalence" false r.Verify.equivalent;
  check_bool "diff names the unmatched states" true
    (r.Verify.only_left <> [] && r.Verify.only_right <> [])

let test_equiv_epsilon_tolerance () =
  let r =
    Verify.equiv ~epsilon:1e-3 (two_state_psm ())
      (two_state_psm ~mu1:5.0000001 ())
  in
  check_bool "epsilon absorbs float noise" true r.Verify.equivalent

let test_equiv_trained_ip () =
  let ip = Psm_ips.Ram.create () in
  let suite = Workloads.suite ~parts:3 ~total_length:6000 ~long:false "RAM" in
  let trained = Flow.train_on_ip ip suite in
  let r = Verify.equiv trained.Flow.optimized trained.Flow.optimized in
  check_bool "trained model self-equivalent" true r.Verify.equivalent

(* ---------- suite ---------- *)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  ( "verify",
    [
      Alcotest.test_case "theory: conflicting constants" `Quick
        test_theory_const_conflict;
      Alcotest.test_case "theory: interval squeeze" `Quick
        test_theory_interval_squeeze;
      Alcotest.test_case "theory: domain holes" `Quick test_theory_hole;
      Alcotest.test_case "theory: order cycles" `Quick test_theory_order_cycle;
      Alcotest.test_case "theory: equality merge" `Quick
        test_theory_equality_merge;
      Alcotest.test_case "theory: disequality split" `Quick
        test_theory_diseq_split;
      Alcotest.test_case "theory: implication" `Quick test_theory_implies;
      Alcotest.test_case "theory: validation" `Quick test_theory_validate;
      qtest test_theory_exact;
      Alcotest.test_case "feasibility: seeded contradiction" `Quick
        test_feasibility_finds_contradiction;
      Alcotest.test_case "feasibility: transitions" `Quick
        test_transition_feasibility;
      Alcotest.test_case "coverage: gap with witness" `Quick
        test_coverage_gap_with_witness;
      Alcotest.test_case "coverage: exhaustive when covered" `Quick
        test_coverage_exhaustive_when_covered;
      Alcotest.test_case "vacuity: degenerate patterns" `Quick test_vacuity;
      Alcotest.test_case "checks total on ill-formed vocabulary" `Quick
        test_checks_total_on_ill_formed_vocabulary;
      Alcotest.test_case "trained IPs verify clean" `Slow
        test_trained_ips_verify_clean;
      Alcotest.test_case "witness export and replay" `Quick test_witness_replay;
      Alcotest.test_case "report JSON carries witnesses" `Quick
        test_report_json_carries_witnesses;
      Alcotest.test_case "equiv: self and renumbered" `Quick
        test_equiv_self_and_renumbered;
      Alcotest.test_case "equiv: power label change" `Quick
        test_equiv_detects_power_change;
      Alcotest.test_case "equiv: epsilon tolerance" `Quick
        test_equiv_epsilon_tolerance;
      Alcotest.test_case "equiv: trained model" `Slow test_equiv_trained_ip;
    ] )
