let () =
  Alcotest.run "psm-repro"
    [ Test_bits.suite; Test_par.suite; Test_stats.suite; Test_trace.suite; Test_rtl.suite; Test_ips.suite; Test_mining.suite; Test_core.suite; Test_hmm.suite; Test_flow.suite; Test_gates.suite; Test_hier.suite; Test_sysc.suite; Test_persist.suite; Test_edges.suite; Test_analysis.suite; Test_obs.suite; Test_stream.suite; Test_verify.suite; Test_serve.suite; Test_golden.suite; Test_rle.suite ]
