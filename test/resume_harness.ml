(* Checkpoint / kill / resume harness, shared by the streaming-trainer
   tests (Stream_train.Checkpoint) and the serve-session tests
   (Psm_serve.Engine.checkpoint): drive a stateful subject step by step,
   once uninterrupted and once killed at a chosen step — where "killed"
   means the only thing surviving is the checkpoint bytes round-tripped
   through a file on disk — then hand both sides' observable history back
   to the caller for comparison.

   The subject's [feed] returns whatever a client would have observed at
   that step (served results, progress events — [] when the subject only
   accumulates internal state). The harness concatenates the pre-kill
   observations of the victim instance with the post-restore observations
   of the revived one: exactly the view of a client that lived through
   the crash. *)

type ('s, 'o, 'r) subject = {
  label : string;
  steps : int;
  create : unit -> 's;
  feed : 's -> int -> 'o list; (* step i; returns client-visible output *)
  save : 's -> string; (* checkpoint bytes *)
  restore : string -> 's; (* fresh instance from checkpoint bytes *)
  finish : 's -> 'r; (* final summary once all steps are fed *)
}

(* Both runs, as (client-observed outputs, final summary):
   [straight] is the uninterrupted reference, [resumed] lived through a
   kill at step [kill_at] (default: halfway). The harness asserts
   nothing — callers compare the two sides with their own checkers. *)
let run ?kill_at subject =
  let kill_at =
    match kill_at with Some k -> k | None -> subject.steps / 2
  in
  if kill_at < 0 || kill_at > subject.steps then
    invalid_arg "Resume_harness.run: kill_at out of range";
  let straight = subject.create () in
  let seen_straight = ref [] in
  for i = 0 to subject.steps - 1 do
    seen_straight := List.rev_append (subject.feed straight i) !seen_straight
  done;
  let expected = (List.rev !seen_straight, subject.finish straight) in
  let victim = subject.create () in
  let seen = ref [] in
  for i = 0 to kill_at - 1 do
    seen := List.rev_append (subject.feed victim i) !seen
  done;
  let path = Filename.temp_file ("psm-resume-" ^ subject.label) ".ckpt" in
  let actual =
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
      (fun () ->
        let oc = open_out_bin path in
        output_string oc (subject.save victim);
        close_out oc;
        (* The kill: nothing of [victim] is consulted past this point. *)
        let ic = open_in_bin path in
        let bytes = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let revived = subject.restore bytes in
        for i = kill_at to subject.steps - 1 do
          seen := List.rev_append (subject.feed revived i) !seen
        done;
        (List.rev !seen, subject.finish revived))
  in
  (expected, actual)
