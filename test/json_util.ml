(* A minimal JSON reader for the test suite (the repo deliberately has no
   third-party JSON dependency). Handles the subset the tools emit:
   objects, arrays, strings with \-escapes, numbers, booleans, null. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type state = { text : string; mutable pos : int }

let peek s = if s.pos < String.length s.text then Some s.text.[s.pos] else None

let advance s = s.pos <- s.pos + 1

let rec skip_ws s =
  match peek s with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance s;
      skip_ws s
  | _ -> ()

let expect s c =
  match peek s with
  | Some got when got = c -> advance s
  | Some got -> fail "expected '%c' at %d, got '%c'" c s.pos got
  | None -> fail "expected '%c' at %d, got end of input" c s.pos

let literal s word value =
  String.iter (fun c -> expect s c) word;
  value

let parse_string s =
  expect s '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek s with
    | None -> fail "unterminated string at %d" s.pos
    | Some '"' -> advance s
    | Some '\\' -> (
        advance s;
        match peek s with
        | None -> fail "unterminated escape at %d" s.pos
        | Some c ->
            advance s;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if s.pos + 4 > String.length s.text then
                  fail "truncated \\u escape at %d" s.pos;
                let hex = String.sub s.text s.pos 4 in
                s.pos <- s.pos + 4;
                let code = int_of_string ("0x" ^ hex) in
                (* The exporters only escape control characters, which fit
                   one byte; anything else is kept as a replacement. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else Buffer.add_char buf '?'
            | c -> fail "bad escape '\\%c' at %d" c s.pos);
            loop ())
    | Some c ->
        advance s;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number s =
  let start = s.pos in
  let number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek s with Some c when number_char c -> true | _ -> false do
    advance s
  done;
  let lexeme = String.sub s.text start (s.pos - start) in
  match float_of_string_opt lexeme with
  | Some f -> f
  | None -> fail "bad number %S at %d" lexeme start

let rec parse_value s =
  skip_ws s;
  match peek s with
  | None -> fail "unexpected end of input at %d" s.pos
  | Some '{' ->
      advance s;
      skip_ws s;
      if peek s = Some '}' then begin
        advance s;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws s;
          let key = parse_string s in
          skip_ws s;
          expect s ':';
          let value = parse_value s in
          skip_ws s;
          match peek s with
          | Some ',' ->
              advance s;
              members ((key, value) :: acc)
          | Some '}' ->
              advance s;
              List.rev ((key, value) :: acc)
          | _ -> fail "expected ',' or '}' at %d" s.pos
        in
        Obj (members [])
      end
  | Some '[' ->
      advance s;
      skip_ws s;
      if peek s = Some ']' then begin
        advance s;
        List []
      end
      else begin
        let rec elements acc =
          let value = parse_value s in
          skip_ws s;
          match peek s with
          | Some ',' ->
              advance s;
              elements (value :: acc)
          | Some ']' ->
              advance s;
              List.rev (value :: acc)
          | _ -> fail "expected ',' or ']' at %d" s.pos
        in
        List (elements [])
      end
  | Some '"' -> Str (parse_string s)
  | Some 't' -> literal s "true" (Bool true)
  | Some 'f' -> literal s "false" (Bool false)
  | Some 'n' -> literal s "null" Null
  | Some _ -> Num (parse_number s)

let of_string text =
  let s = { text; pos = 0 } in
  let v = parse_value s in
  skip_ws s;
  if s.pos <> String.length text then fail "trailing garbage at %d" s.pos;
  v

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* ---- accessors (raise {!Error} on shape mismatch) ---- *)

let member key = function
  | Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> v
      | None -> fail "missing key %S" key)
  | _ -> fail "not an object (looking up %S)" key

let mem_opt key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_list = function List l -> l | _ -> fail "not an array"
let to_float = function Num f -> f | _ -> fail "not a number"
let to_int j = int_of_float (to_float j)
let to_string = function Str s -> s | _ -> fail "not a string"
