(* Tests for the gate-level structural IP netlists: cycle-exact
   equivalence against the behavioural models and structural sanity. *)

module Bits = Psm_bits.Bits
module Ip = Psm_ips.Ip
module Netlist = Psm_rtl.Netlist
module Workloads = Psm_ips.Workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let lockstep ?(cycles = 250) name behavioural structural stim =
  behavioural.Ip.reset ();
  structural.Ip.reset ();
  Array.iteri
    (fun t pis ->
      if t < cycles then begin
        let oa = fst (behavioural.Ip.step pis) in
        let ob = fst (structural.Ip.step pis) in
        Array.iteri
          (fun k va ->
            Alcotest.(check string)
              (Printf.sprintf "%s output %d cycle %d" name k t)
              (Bits.to_hex_string va)
              (Bits.to_hex_string ob.(k)))
          oa
      end)
    stim

let test_ram_gates_equivalence () =
  lockstep "RAM" (Psm_ips.Ram.create ()) (Psm_ips.Ram_gates.create ())
    (Workloads.ram_short ~length:250 ())

let test_aes_gates_equivalence () =
  lockstep "AES" (Psm_ips.Aes.create ()) (Psm_ips.Aes_gates.create ())
    (Workloads.aes_short ~length:250 ())

let test_camellia_gates_equivalence () =
  lockstep "Camellia" (Psm_ips.Camellia.create ()) (Psm_ips.Camellia_gates.create ())
    (Workloads.camellia_short ~length:250 ())

let test_gates_survive_reset_mid_block () =
  (* Drive rst in the middle of an AES block on both models. *)
  let a = Psm_ips.Aes.create () and b = Psm_ips.Aes_gates.create () in
  let key = Bits.of_hex_string ~width:128 "000102030405060708090a0b0c0d0e0f" in
  let data = Bits.of_hex_string ~width:128 "00112233445566778899aabbccddeeff" in
  let op ~start ~rst =
    [| key; data; Bits.of_bool start; Bits.of_bool false; Bits.of_bool true;
       Bits.of_bool rst |]
  in
  let stim =
    Array.concat
      [ [| op ~start:true ~rst:false |];
        Array.make 4 (op ~start:false ~rst:false);
        [| op ~start:false ~rst:true |];
        [| op ~start:true ~rst:false |];
        Array.make 12 (op ~start:false ~rst:false) ]
  in
  lockstep "AES+rst" a b stim

let test_structural_registry () =
  Alcotest.(check (list string)) "all four IPs" [ "RAM"; "MultSum"; "AES"; "Camellia" ]
    Psm_ips.Structural.available;
  List.iter
    (fun name ->
      check_bool name true (Psm_ips.Structural.netlist_for name <> None);
      check_bool name true (Psm_ips.Structural.create_for name <> None))
    Psm_ips.Structural.available

let test_netlists_validate () =
  List.iter
    (fun name ->
      match Psm_ips.Structural.netlist_for name with
      | None -> Alcotest.fail name
      | Some build ->
          let nl = build () in
          Netlist.validate nl;
          check_bool (name ^ " has gates") true (Netlist.gate_count nl > 1000);
          check_bool (name ^ " has state") true (Netlist.memory_elements nl > 50))
    Psm_ips.Structural.available

let test_gate_counts_ordering () =
  (* Sanity on relative complexity: MultSum < RAM < Camellia < AES. *)
  let gates name =
    match Psm_ips.Structural.netlist_for name with
    | Some build -> Netlist.gate_count (build ())
    | None -> 0
  in
  let multsum = gates "MultSum" and ram = gates "RAM" in
  let aes = gates "AES" and camellia = gates "Camellia" in
  check_bool "MultSum smallest" true (multsum < ram);
  check_bool "ciphers biggest" true (ram < camellia && camellia < aes)

let test_sbox_lut_gadget () =
  (* The LUT mux tree implements an arbitrary table exactly. *)
  let nl = Netlist.create "lut" in
  let input = Netlist.input nl "x" 8 in
  let table = Array.init 256 (fun i -> (i * 7) lxor 0x5A land 0xFF) in
  let out = Psm_ips.Gates_util.sbox_lut nl table input in
  Netlist.output nl "y" out;
  let sim = Psm_rtl.Sim.create nl in
  for v = 0 to 255 do
    let outs = Psm_rtl.Sim.step sim [ ("x", Bits.of_int ~width:8 v) ] in
    check_int (Printf.sprintf "lut[%d]" v) table.(v) (Bits.to_int (List.assoc "y" outs))
  done

let test_xtime_gadget () =
  let nl = Netlist.create "xtime" in
  let input = Netlist.input nl "x" 8 in
  Netlist.output nl "y" (Psm_ips.Gates_util.xtime nl input);
  let sim = Psm_rtl.Sim.create nl in
  for v = 0 to 255 do
    let expect =
      let s = v lsl 1 in
      (if s land 0x100 <> 0 then s lxor 0x11B else s) land 0xFF
    in
    let outs = Psm_rtl.Sim.step sim [ ("x", Bits.of_int ~width:8 v) ] in
    check_int (Printf.sprintf "xtime %d" v) expect (Bits.to_int (List.assoc "y" outs))
  done

let test_gf_mul_const_gadget () =
  let nl = Netlist.create "gfmul" in
  let input = Netlist.input nl "x" 8 in
  let outputs =
    List.map
      (fun k -> (k, Psm_ips.Gates_util.gf_mul_const nl k input))
      [ 2; 3; 9; 11; 13; 14 ]
  in
  List.iter (fun (k, nets) -> Netlist.output nl (Printf.sprintf "y%d" k) nets) outputs;
  let sim = Psm_rtl.Sim.create nl in
  (* Reference GF multiply (same as Aes_core's internals). *)
  let gf_mul a b =
    let rec go acc a b =
      if b = 0 then acc
      else
        go (if b land 1 = 1 then acc lxor a else acc)
          (let a = a lsl 1 in
           if a land 0x100 <> 0 then a lxor 0x11B else a)
          (b lsr 1)
    in
    go 0 a b
  in
  List.iter
    (fun v ->
      let outs = Psm_rtl.Sim.step sim [ ("x", Bits.of_int ~width:8 v) ] in
      List.iter
        (fun (k, _) ->
          check_int
            (Printf.sprintf "%d*%d" k v)
            (gf_mul v k)
            (Bits.to_int (List.assoc (Printf.sprintf "y%d" k) outs)))
        outputs)
    [ 0; 1; 0x53; 0x80; 0xFF; 0xC3 ]

(* ---------- event-driven simulator ---------- *)

let test_event_sim_equivalent_on_ram () =
  (* Lockstep vs the levelized simulator on the RAM netlist (sparse
     activity: the event queue's best case), including toggle counts. *)
  let levelized = Psm_rtl.Sim.create (Psm_ips.Ram_gates.netlist ()) in
  let event = Psm_rtl.Event_sim.create (Psm_ips.Ram_gates.netlist ()) in
  let stim = Workloads.ram_short ~length:400 () in
  Array.iteri
    (fun t pis ->
      let ins =
        [ ("ce", pis.(0)); ("we", pis.(1)); ("addr", pis.(2)); ("wdata", pis.(3)) ]
      in
      let a = Psm_rtl.Sim.step levelized ins in
      let b = Psm_rtl.Event_sim.step event ins in
      Alcotest.(check string)
        (Printf.sprintf "rdata cycle %d" t)
        (Bits.to_hex_string (List.assoc "rdata" a))
        (Bits.to_hex_string (List.assoc "rdata" b));
      check_int
        (Printf.sprintf "toggles cycle %d" t)
        (Psm_rtl.Sim.last_toggles levelized)
        (Psm_rtl.Event_sim.last_toggles event))
    stim;
  (* And the event queue actually saved work. *)
  let full_work = 400 * Netlist.gate_count (Psm_ips.Ram_gates.netlist ()) in
  check_bool "fewer evaluations" true
    (Psm_rtl.Event_sim.gate_evaluations event < full_work / 2)

let test_event_sim_reset () =
  let event = Psm_rtl.Event_sim.create (Psm_ips.Ram_gates.netlist ()) in
  let op w = [ ("ce", Bits.of_bool true); ("we", Bits.of_bool true);
               ("addr", Bits.zero 10); ("wdata", Bits.of_int ~width:32 w) ] in
  ignore (Psm_rtl.Event_sim.step event (op 0xFF));
  Psm_rtl.Event_sim.reset event;
  check_int "cycle cleared" 0 (Psm_rtl.Event_sim.cycle event);
  (* After reset, a read of word 0 returns 0 (the write was erased). *)
  ignore (Psm_rtl.Event_sim.step event
            [ ("ce", Bits.of_bool true); ("we", Bits.of_bool false);
              ("addr", Bits.zero 10); ("wdata", Bits.zero 32) ]);
  let outs = Psm_rtl.Event_sim.step event
      [ ("ce", Bits.of_bool false); ("we", Bits.of_bool false);
        ("addr", Bits.zero 10); ("wdata", Bits.zero 32) ] in
  check_int "memory cleared" 0 (Bits.to_int (List.assoc "rdata" outs))

(* ---------- gadget properties ---------- *)

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:100 ~name arb f)

let gadget_properties =
  [ prop "rotl_nets matches Bits.rotate_left"
      QCheck.(pair (int_bound 255) (int_bound 23))
      (fun (v, n) ->
        (* Build an identity netlist, rotate its input nets as wiring, and
           compare with the value-level rotation. *)
        let nl = Netlist.create "rot" in
        let input = Netlist.input nl "x" 8 in
        Netlist.output nl "y" (Psm_ips.Gates_util.rotl_nets input n);
        let sim = Psm_rtl.Sim.create nl in
        let outs = Psm_rtl.Sim.step sim [ ("x", Bits.of_int ~width:8 v) ] in
        Bits.equal (List.assoc "y" outs) (Bits.rotate_left (Bits.of_int ~width:8 v) n));
    prop "byte_const materializes any byte" (QCheck.int_bound 255) (fun v ->
        let nl = Netlist.create "const" in
        let _ = Netlist.input nl "dummy" 1 in
        Netlist.output nl "y" (Psm_ips.Gates_util.byte_const nl v);
        let sim = Psm_rtl.Sim.create nl in
        let outs = Psm_rtl.Sim.step sim [ ("dummy", Bits.of_bool false) ] in
        Bits.to_int (List.assoc "y" outs) = v) ]

let suite =
  ( "gates",
    [ Alcotest.test_case "RAM gates == behavioural" `Slow test_ram_gates_equivalence;
      Alcotest.test_case "AES gates == behavioural" `Slow test_aes_gates_equivalence;
      Alcotest.test_case "Camellia gates == behavioural" `Slow test_camellia_gates_equivalence;
      Alcotest.test_case "reset mid-block" `Slow test_gates_survive_reset_mid_block;
      Alcotest.test_case "structural registry" `Quick test_structural_registry;
      Alcotest.test_case "netlists validate" `Quick test_netlists_validate;
      Alcotest.test_case "gate count ordering" `Quick test_gate_counts_ordering;
      Alcotest.test_case "event sim == levelized (RAM)" `Slow test_event_sim_equivalent_on_ram;
      Alcotest.test_case "event sim reset" `Quick test_event_sim_reset;
      Alcotest.test_case "sbox LUT gadget" `Quick test_sbox_lut_gadget;
      Alcotest.test_case "xtime gadget" `Quick test_xtime_gadget;
      Alcotest.test_case "gf_mul_const gadget" `Quick test_gf_mul_const_gadget ]
    @ gadget_properties )
