(* Tests for Psm_trace: signals, interfaces, functional/power traces,
   VCD and CSV round-trips, trace statistics. *)

module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface
module FT = Psm_trace.Functional_trace
module PT = Psm_trace.Power_trace
module Vcd = Psm_trace.Vcd
module Csv = Psm_trace.Csv
module Stats = Psm_trace.Trace_stats

let iface () =
  Interface.create
    [ Signal.input "en" 1; Signal.input "data" 8; Signal.output "q" 8 ]

let sample en data q =
  [| Bits.of_bool en; Bits.of_int ~width:8 data; Bits.of_int ~width:8 q |]

let simple_trace () =
  FT.of_samples (iface ())
    [| sample false 0 0; sample true 0x12 0; sample true 0x34 0x12;
       sample true 0x34 0x34; sample false 0x34 0x34 |]

(* ---------- signals / interface ---------- *)

let test_signal_validation () =
  Alcotest.check_raises "zero width" (Invalid_argument "Signal: width must be positive")
    (fun () -> ignore (Signal.input "x" 0));
  Alcotest.check_raises "empty name" (Invalid_argument "Signal: name must be non-empty")
    (fun () -> ignore (Signal.output "" 4))

let test_interface_lookup () =
  let i = iface () in
  Alcotest.(check int) "arity" 3 (Interface.arity i);
  Alcotest.(check int) "index" 1 (Interface.index i "data");
  Alcotest.(check string) "signal" "q" (Interface.signal i 2).Signal.name;
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Interface.index i "nope"))

let test_interface_widths () =
  let i = iface () in
  Alcotest.(check int) "inputs" 9 (Interface.total_input_width i);
  Alcotest.(check int) "outputs" 8 (Interface.total_output_width i);
  Alcotest.(check int) "n inputs" 2 (List.length (Interface.inputs i));
  Alcotest.(check int) "n outputs" 1 (List.length (Interface.outputs i))

let test_interface_duplicate () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Interface.create: duplicate signal name x")
    (fun () -> ignore (Interface.create [ Signal.input "x" 1; Signal.output "x" 2 ]))

(* ---------- functional traces ---------- *)

let test_trace_accessors () =
  let t = simple_trace () in
  Alcotest.(check int) "length" 5 (FT.length t);
  Alcotest.(check int) "value" 0x34 (Bits.to_int (FT.value t ~time:2 ~signal:1));
  Alcotest.(check int) "by name" 0x12 (Bits.to_int (FT.value_by_name t ~time:2 "q"))

let test_builder_matches_of_samples () =
  let t = simple_trace () in
  let b = FT.Builder.create (iface ()) in
  FT.iter (fun _ s -> FT.Builder.append b s) t;
  Alcotest.(check bool) "equal" true (FT.equal t (FT.Builder.finish b))

let test_builder_validates () =
  let b = FT.Builder.create (iface ()) in
  Alcotest.check_raises "arity"
    (Invalid_argument "Functional_trace: sample arity 1, interface arity 3")
    (fun () -> FT.Builder.append b [| Bits.zero 1 |]);
  Alcotest.check_raises "width"
    (Invalid_argument "Functional_trace: signal data has width 8, sample value width 7")
    (fun () -> FT.Builder.append b [| Bits.zero 1; Bits.zero 7; Bits.zero 8 |])

let test_sub_append () =
  let t = simple_trace () in
  let first = FT.sub t ~start:0 ~stop:1 and rest = FT.sub t ~start:2 ~stop:4 in
  Alcotest.(check bool) "append inverse of sub" true (FT.equal t (FT.append first rest))

let test_input_hamming () =
  let t = simple_trace () in
  let hd = FT.input_hamming_series t in
  (* t0->t1: en flips (1) + data 0 -> 0x12 (2 bits) = 3.
     t1->t2: data 0x12 -> 0x34 (HD of 0x26 = 3 bits) = 3.
     t2->t3: nothing changes. t3->t4: en flips = 1. *)
  Alcotest.(check (array (float 1e-9))) "series" [| 0.; 3.; 3.; 0.; 1. |] hd

let test_wide_value_trace () =
  (* 128-bit signals flow through traces unharmed. *)
  let i = Interface.create [ Signal.input "k" 128; Signal.output "o" 1 ] in
  let v = Bits.of_hex_string ~width:128 "0123456789abcdeffedcba9876543210" in
  let t = FT.of_samples i [| [| v; Bits.of_bool true |] |] in
  Alcotest.(check string) "roundtrip" "0123456789abcdeffedcba9876543210"
    (Bits.to_hex_string (FT.value t ~time:0 ~signal:0))

(* ---------- power traces ---------- *)

let test_power_attributes () =
  let p = PT.of_array [| 1.; 2.; 3.; 4.; 100. |] in
  let mu, sigma, n = PT.attributes p ~start:0 ~stop:3 in
  Alcotest.(check (float 1e-9)) "mu" 2.5 mu;
  Alcotest.(check (float 1e-9)) "sigma" (sqrt (5. /. 3.)) sigma;
  Alcotest.(check int) "n" 4 n

let test_power_rejects_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Power_trace.of_array: energies must be non-negative")
    (fun () -> ignore (PT.of_array [| 1.; -2. |]))

let test_power_total_mean () =
  let p = PT.of_array [| 1.; 2.; 3. |] in
  Alcotest.(check (float 1e-9)) "total" 6. (PT.total_energy p);
  Alcotest.(check (float 1e-9)) "mean" 2. (PT.mean p)

let test_mre () =
  let reference = PT.of_array [| 10.; 10.; 10.; 10. |] in
  let estimate = PT.of_array [| 11.; 9.; 10.; 10. |] in
  Alcotest.(check (float 1e-9)) "mre" 0.05
    (PT.mean_relative_error ~reference ~estimate);
  Alcotest.(check (float 1e-9)) "perfect" 0.
    (PT.mean_relative_error ~reference ~estimate:reference)

let test_mre_zero_reference () =
  (* Zero-reference instants are normalized by the trace mean. *)
  let reference = PT.of_array [| 0.; 10. |] in
  let estimate = PT.of_array [| 5.; 10. |] in
  Alcotest.(check (float 1e-9)) "zero denominator handled" 0.5
    (PT.mean_relative_error ~reference ~estimate)

(* ---------- VCD ---------- *)

let test_vcd_roundtrip () =
  let t = simple_trace () in
  let power = PT.of_array [| 0.5; 1.5; 2.5; 3.5; 4.5 |] in
  let parsed = Vcd.parse (Vcd.to_string ~power t) in
  Alcotest.(check bool) "functional" true (FT.equal t parsed.Vcd.trace);
  (match parsed.Vcd.power with
  | Some p ->
      Alcotest.(check (array (float 1e-12))) "power" (PT.to_array power) (PT.to_array p)
  | None -> Alcotest.fail "power trace lost");
  Alcotest.(check string) "timescale" "1ns" parsed.Vcd.timescale

let test_vcd_no_power () =
  let t = simple_trace () in
  let parsed = Vcd.parse (Vcd.to_string t) in
  Alcotest.(check bool) "functional" true (FT.equal t parsed.Vcd.trace);
  Alcotest.(check bool) "no power" true (parsed.Vcd.power = None)

let test_vcd_preserves_directions () =
  let t = simple_trace () in
  let parsed = Vcd.parse (Vcd.to_string t) in
  Alcotest.(check bool) "interface equal" true
    (Interface.equal (FT.interface t) (FT.interface parsed.Vcd.trace))

let test_vcd_foreign_input () =
  (* A hand-written VCD in a style other tools emit: x values, $dumpvars,
     sparse change records. *)
  let text =
    "$timescale 10 ps $end\n\
     $scope module top $end\n\
     $var wire 4 ! count $end\n\
     $var wire 1 \" clk $end\n\
     $upscope $end\n\
     $enddefinitions $end\n\
     #0\n$dumpvars\nbxxxx !\n0\"\n$end\n\
     #1\nb101 !\n1\"\n\
     #2\n0\"\n"
  in
  let parsed = Vcd.parse text in
  Alcotest.(check int) "instants" 3 (FT.length parsed.Vcd.trace);
  Alcotest.(check int) "x maps to 0" 0
    (Bits.to_int (FT.value_by_name parsed.Vcd.trace ~time:0 "count"));
  Alcotest.(check int) "padded vector" 5
    (Bits.to_int (FT.value_by_name parsed.Vcd.trace ~time:1 "count"));
  (* Unchanged values persist. *)
  Alcotest.(check int) "carries forward" 5
    (Bits.to_int (FT.value_by_name parsed.Vcd.trace ~time:2 "count"));
  Alcotest.(check string) "timescale" "10ps" parsed.Vcd.timescale

let test_vcd_rejects_garbage () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Vcd.parse "not a vcd at all");
       false
     with Vcd.Parse_error _ -> true)

let test_vcd_file_io () =
  let t = simple_trace () in
  let path = Filename.temp_file "psm" ".vcd" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Vcd.write_file path t;
      let parsed = Vcd.parse_file path in
      Alcotest.(check bool) "roundtrip" true (FT.equal t parsed.Vcd.trace))

(* ---------- CSV ---------- *)

let test_csv_roundtrip () =
  let t = simple_trace () in
  let power = PT.of_array [| 0.25; 1.; 2.; 3.; 4. |] in
  let trace', power' = Csv.parse (Csv.to_string ~power t) in
  Alcotest.(check bool) "functional" true (FT.equal t trace');
  (match power' with
  | Some p ->
      Alcotest.(check (array (float 1e-12))) "power" (PT.to_array power) (PT.to_array p)
  | None -> Alcotest.fail "power lost")

let test_csv_no_power () =
  let t = simple_trace () in
  let trace', power' = Csv.parse (Csv.to_string t) in
  Alcotest.(check bool) "functional" true (FT.equal t trace');
  Alcotest.(check bool) "no power" true (power' = None)

let test_csv_rejects_bad_header () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Csv.parse "a,b,c\n1,2,3\n");
       false
     with Csv.Parse_error _ -> true)

(* ---------- SAIF ---------- *)

let test_saif_counters () =
  let t = simple_trace () in
  (* en: 0 1 1 1 0 -> T1 = 3, TC = 2. *)
  let c = Psm_trace.Saif.bit_counters t ~signal:0 ~bit:0 in
  Alcotest.(check int) "T0" 2 c.Psm_trace.Saif.t0;
  Alcotest.(check int) "T1" 3 c.Psm_trace.Saif.t1;
  Alcotest.(check int) "TC" 2 c.Psm_trace.Saif.tc

let test_saif_document () =
  let t = simple_trace () in
  let saif = Psm_trace.Saif.to_string ~design:"demo" t in
  let contains needle =
    let n = String.length needle and h = String.length saif in
    let rec go i = i + n <= h && (String.sub saif i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header" true (contains "(SAIFILE");
  Alcotest.(check bool) "design" true (contains "(DESIGN \"demo\")");
  Alcotest.(check bool) "duration" true (contains "(DURATION 5)");
  Alcotest.(check bool) "bit select" true (contains "data\\[7\\]");
  Alcotest.(check bool) "balanced parens" true
    (String.fold_left (fun acc c -> acc + (match c with '(' -> 1 | ')' -> -1 | _ -> 0)) 0 saif
     = 0)

let test_saif_t0_t1_sum () =
  let t = simple_trace () in
  let iface = FT.interface t in
  for signal = 0 to Interface.arity iface - 1 do
    let s = Interface.signal iface signal in
    for bit = 0 to s.Signal.width - 1 do
      let c = Psm_trace.Saif.bit_counters t ~signal ~bit in
      Alcotest.(check int) "T0+T1 = duration" (FT.length t)
        (c.Psm_trace.Saif.t0 + c.Psm_trace.Saif.t1)
    done
  done

(* ---------- trace stats ---------- *)

let test_per_signal_toggles () =
  let t = simple_trace () in
  let stats = Stats.per_signal t in
  let by_name name =
    Array.to_list stats
    |> List.find (fun (a : Stats.signal_activity) -> a.signal.Signal.name = name)
  in
  Alcotest.(check int) "en toggles" 2 (by_name "en").Stats.toggles;
  Alcotest.(check int) "data toggles" 5 (by_name "data").Stats.toggles;
  Alcotest.(check int) "q toggles" 5 (by_name "q").Stats.toggles

let test_distinct_samples () =
  let t = simple_trace () in
  Alcotest.(check int) "distinct" 5 (Stats.distinct_samples t);
  let constant =
    FT.of_samples (iface ()) (Array.make 10 (sample true 1 1))
  in
  Alcotest.(check int) "constant" 1 (Stats.distinct_samples constant)

let test_switching_density () =
  let t = simple_trace () in
  (* 12 toggles over 4 cycle-pairs x 17 bits. *)
  Alcotest.(check (float 1e-9)) "density" (12. /. (17. *. 4.)) (Stats.switching_density t)

(* ---------- properties ---------- *)

let arb_trace =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 40 in
      let* samples =
        list_size (return n)
          (map2
             (fun en data ->
               [| Bits.of_bool en;
                  Bits.of_int ~width:8 (data land 0xFF);
                  Bits.of_int ~width:8 ((data * 7) land 0xFF) |])
             bool (int_bound 255))
      in
      return (FT.of_samples (iface ()) (Array.of_list samples)))
  in
  QCheck.make gen

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:50 ~name arb f)

let properties =
  [ prop "vcd parser total on junk" (QCheck.make QCheck.Gen.(string_size ~gen:printable (int_range 0 400)))
      (fun junk ->
        (* Any input either parses or raises Parse_error — never crashes
           with an unexpected exception. *)
        try
          ignore (Vcd.parse junk);
          true
        with
        | Vcd.Parse_error _ -> true
        | _ -> false);
    prop "csv parser total on junk" (QCheck.make QCheck.Gen.(string_size ~gen:printable (int_range 0 400)))
      (fun junk ->
        try
          ignore (Csv.parse junk);
          true
        with
        | Csv.Parse_error _ -> true
        | _ -> false);
    prop "saif TC equals trace_stats toggles" arb_trace (fun t ->
        (* Summing SAIF per-bit toggle counts over a signal reproduces the
           Trace_stats per-signal toggle count. *)
        let iface = FT.interface t in
        let stats = Stats.per_signal t in
        Array.for_all
          (fun i ->
            let s = Interface.signal iface i in
            let saif_total = ref 0 in
            for bit = 0 to s.Signal.width - 1 do
              saif_total := !saif_total + (Psm_trace.Saif.bit_counters t ~signal:i ~bit).Psm_trace.Saif.tc
            done;
            !saif_total = stats.(i).Stats.toggles)
          (Array.init (Interface.arity iface) Fun.id));
    prop "vcd roundtrip" arb_trace (fun t ->
        FT.equal t (Vcd.parse (Vcd.to_string t)).Vcd.trace);
    prop "csv roundtrip" arb_trace (fun t -> FT.equal t (fst (Csv.parse (Csv.to_string t))));
    prop "hamming series bounded by interface width" arb_trace (fun t ->
        Array.for_all (fun h -> h >= 0. && h <= 9.) (FT.input_hamming_series t));
    prop "sub+append identity" arb_trace (fun t ->
        let n = FT.length t in
        QCheck.assume (n >= 2);
        let k = n / 2 in
        FT.equal t
          (FT.append (FT.sub t ~start:0 ~stop:(k - 1)) (FT.sub t ~start:k ~stop:(n - 1)))) ]

let suite =
  ( "trace",
    [ Alcotest.test_case "signal validation" `Quick test_signal_validation;
      Alcotest.test_case "interface lookup" `Quick test_interface_lookup;
      Alcotest.test_case "interface widths" `Quick test_interface_widths;
      Alcotest.test_case "interface duplicates" `Quick test_interface_duplicate;
      Alcotest.test_case "trace accessors" `Quick test_trace_accessors;
      Alcotest.test_case "builder" `Quick test_builder_matches_of_samples;
      Alcotest.test_case "builder validates" `Quick test_builder_validates;
      Alcotest.test_case "sub/append" `Quick test_sub_append;
      Alcotest.test_case "input hamming series" `Quick test_input_hamming;
      Alcotest.test_case "wide values" `Quick test_wide_value_trace;
      Alcotest.test_case "power attributes" `Quick test_power_attributes;
      Alcotest.test_case "power rejects negative" `Quick test_power_rejects_negative;
      Alcotest.test_case "power total/mean" `Quick test_power_total_mean;
      Alcotest.test_case "MRE" `Quick test_mre;
      Alcotest.test_case "MRE zero reference" `Quick test_mre_zero_reference;
      Alcotest.test_case "vcd roundtrip" `Quick test_vcd_roundtrip;
      Alcotest.test_case "vcd without power" `Quick test_vcd_no_power;
      Alcotest.test_case "vcd directions" `Quick test_vcd_preserves_directions;
      Alcotest.test_case "vcd foreign input" `Quick test_vcd_foreign_input;
      Alcotest.test_case "vcd rejects garbage" `Quick test_vcd_rejects_garbage;
      Alcotest.test_case "vcd file io" `Quick test_vcd_file_io;
      Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
      Alcotest.test_case "csv without power" `Quick test_csv_no_power;
      Alcotest.test_case "csv bad header" `Quick test_csv_rejects_bad_header;
      Alcotest.test_case "saif counters" `Quick test_saif_counters;
      Alcotest.test_case "saif document" `Quick test_saif_document;
      Alcotest.test_case "saif t0+t1" `Quick test_saif_t0_t1_sum;
      Alcotest.test_case "per-signal toggles" `Quick test_per_signal_toggles;
      Alcotest.test_case "distinct samples" `Quick test_distinct_samples;
      Alcotest.test_case "switching density" `Quick test_switching_density ]
    @ properties )
