(* Tests for Psm_trace: signals, interfaces, functional/power traces,
   VCD and CSV round-trips, trace statistics. *)

module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface
module FT = Psm_trace.Functional_trace
module PT = Psm_trace.Power_trace
module Vcd = Psm_trace.Vcd
module Csv = Psm_trace.Csv
module Reader = Psm_trace.Reader
module Stats = Psm_trace.Trace_stats

let iface () =
  Interface.create
    [ Signal.input "en" 1; Signal.input "data" 8; Signal.output "q" 8 ]

let sample en data q =
  [| Bits.of_bool en; Bits.of_int ~width:8 data; Bits.of_int ~width:8 q |]

let simple_trace () =
  FT.of_samples (iface ())
    [| sample false 0 0; sample true 0x12 0; sample true 0x34 0x12;
       sample true 0x34 0x34; sample false 0x34 0x34 |]

(* ---------- signals / interface ---------- *)

let test_signal_validation () =
  Alcotest.check_raises "zero width" (Invalid_argument "Signal: width must be positive")
    (fun () -> ignore (Signal.input "x" 0));
  Alcotest.check_raises "empty name" (Invalid_argument "Signal: name must be non-empty")
    (fun () -> ignore (Signal.output "" 4))

let test_interface_lookup () =
  let i = iface () in
  Alcotest.(check int) "arity" 3 (Interface.arity i);
  Alcotest.(check int) "index" 1 (Interface.index i "data");
  Alcotest.(check string) "signal" "q" (Interface.signal i 2).Signal.name;
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Interface.index i "nope"))

let test_interface_widths () =
  let i = iface () in
  Alcotest.(check int) "inputs" 9 (Interface.total_input_width i);
  Alcotest.(check int) "outputs" 8 (Interface.total_output_width i);
  Alcotest.(check int) "n inputs" 2 (List.length (Interface.inputs i));
  Alcotest.(check int) "n outputs" 1 (List.length (Interface.outputs i))

let test_interface_duplicate () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Interface.create: duplicate signal name x")
    (fun () -> ignore (Interface.create [ Signal.input "x" 1; Signal.output "x" 2 ]))

(* ---------- functional traces ---------- *)

let test_trace_accessors () =
  let t = simple_trace () in
  Alcotest.(check int) "length" 5 (FT.length t);
  Alcotest.(check int) "value" 0x34 (Bits.to_int (FT.value t ~time:2 ~signal:1));
  Alcotest.(check int) "by name" 0x12 (Bits.to_int (FT.value_by_name t ~time:2 "q"))

let test_builder_matches_of_samples () =
  let t = simple_trace () in
  let b = FT.Builder.create (iface ()) in
  FT.iter (fun _ s -> FT.Builder.append b s) t;
  Alcotest.(check bool) "equal" true (FT.equal t (FT.Builder.finish b))

let test_builder_validates () =
  let b = FT.Builder.create (iface ()) in
  Alcotest.check_raises "arity"
    (Invalid_argument "Functional_trace: sample arity 1, interface arity 3")
    (fun () -> FT.Builder.append b [| Bits.zero 1 |]);
  Alcotest.check_raises "width"
    (Invalid_argument "Functional_trace: signal data has width 8, sample value width 7")
    (fun () -> FT.Builder.append b [| Bits.zero 1; Bits.zero 7; Bits.zero 8 |])

let test_sub_append () =
  let t = simple_trace () in
  let first = FT.sub t ~start:0 ~stop:1 and rest = FT.sub t ~start:2 ~stop:4 in
  Alcotest.(check bool) "append inverse of sub" true (FT.equal t (FT.append first rest))

let test_input_hamming () =
  let t = simple_trace () in
  let hd = FT.input_hamming_series t in
  (* t0->t1: en flips (1) + data 0 -> 0x12 (2 bits) = 3.
     t1->t2: data 0x12 -> 0x34 (HD of 0x26 = 3 bits) = 3.
     t2->t3: nothing changes. t3->t4: en flips = 1. *)
  Alcotest.(check (array (float 1e-9))) "series" [| 0.; 3.; 3.; 0.; 1. |] hd

let test_wide_value_trace () =
  (* 128-bit signals flow through traces unharmed. *)
  let i = Interface.create [ Signal.input "k" 128; Signal.output "o" 1 ] in
  let v = Bits.of_hex_string ~width:128 "0123456789abcdeffedcba9876543210" in
  let t = FT.of_samples i [| [| v; Bits.of_bool true |] |] in
  Alcotest.(check string) "roundtrip" "0123456789abcdeffedcba9876543210"
    (Bits.to_hex_string (FT.value t ~time:0 ~signal:0))

(* ---------- power traces ---------- *)

let test_power_attributes () =
  let p = PT.of_array [| 1.; 2.; 3.; 4.; 100. |] in
  let mu, sigma, n = PT.attributes p ~start:0 ~stop:3 in
  Alcotest.(check (float 1e-9)) "mu" 2.5 mu;
  Alcotest.(check (float 1e-9)) "sigma" (sqrt (5. /. 3.)) sigma;
  Alcotest.(check int) "n" 4 n

let test_power_rejects_negative () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Power_trace.of_array: energies must be non-negative")
    (fun () -> ignore (PT.of_array [| 1.; -2. |]))

let test_power_total_mean () =
  let p = PT.of_array [| 1.; 2.; 3. |] in
  Alcotest.(check (float 1e-9)) "total" 6. (PT.total_energy p);
  Alcotest.(check (float 1e-9)) "mean" 2. (PT.mean p)

let test_mre () =
  let reference = PT.of_array [| 10.; 10.; 10.; 10. |] in
  let estimate = PT.of_array [| 11.; 9.; 10.; 10. |] in
  Alcotest.(check (float 1e-9)) "mre" 0.05
    (PT.mean_relative_error ~reference ~estimate);
  Alcotest.(check (float 1e-9)) "perfect" 0.
    (PT.mean_relative_error ~reference ~estimate:reference)

let test_mre_zero_reference () =
  (* Zero-reference instants are normalized by the trace mean. *)
  let reference = PT.of_array [| 0.; 10. |] in
  let estimate = PT.of_array [| 5.; 10. |] in
  Alcotest.(check (float 1e-9)) "zero denominator handled" 0.5
    (PT.mean_relative_error ~reference ~estimate)

(* ---------- VCD ---------- *)

let test_vcd_roundtrip () =
  let t = simple_trace () in
  let power = PT.of_array [| 0.5; 1.5; 2.5; 3.5; 4.5 |] in
  let parsed = Vcd.parse (Vcd.to_string ~power t) in
  Alcotest.(check bool) "functional" true (FT.equal t parsed.Vcd.trace);
  (match parsed.Vcd.power with
  | Some p ->
      Alcotest.(check (array (float 1e-12))) "power" (PT.to_array power) (PT.to_array p)
  | None -> Alcotest.fail "power trace lost");
  Alcotest.(check string) "timescale" "1ns" parsed.Vcd.timescale

let test_vcd_no_power () =
  let t = simple_trace () in
  let parsed = Vcd.parse (Vcd.to_string t) in
  Alcotest.(check bool) "functional" true (FT.equal t parsed.Vcd.trace);
  Alcotest.(check bool) "no power" true (parsed.Vcd.power = None)

let test_vcd_preserves_directions () =
  let t = simple_trace () in
  let parsed = Vcd.parse (Vcd.to_string t) in
  Alcotest.(check bool) "interface equal" true
    (Interface.equal (FT.interface t) (FT.interface parsed.Vcd.trace))

let test_vcd_foreign_input () =
  (* A hand-written VCD in a style other tools emit: x values, $dumpvars,
     sparse change records. *)
  let text =
    "$timescale 10 ps $end\n\
     $scope module top $end\n\
     $var wire 4 ! count $end\n\
     $var wire 1 \" clk $end\n\
     $upscope $end\n\
     $enddefinitions $end\n\
     #0\n$dumpvars\nbxxxx !\n0\"\n$end\n\
     #1\nb101 !\n1\"\n\
     #2\n0\"\n"
  in
  let parsed = Vcd.parse text in
  Alcotest.(check int) "instants" 3 (FT.length parsed.Vcd.trace);
  Alcotest.(check int) "x maps to 0" 0
    (Bits.to_int (FT.value_by_name parsed.Vcd.trace ~time:0 "count"));
  Alcotest.(check int) "padded vector" 5
    (Bits.to_int (FT.value_by_name parsed.Vcd.trace ~time:1 "count"));
  (* Unchanged values persist. *)
  Alcotest.(check int) "carries forward" 5
    (Bits.to_int (FT.value_by_name parsed.Vcd.trace ~time:2 "count"));
  Alcotest.(check string) "timescale" "10ps" parsed.Vcd.timescale

let test_vcd_rejects_garbage () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Vcd.parse "not a vcd at all");
       false
     with Vcd.Parse_error _ -> true)

let test_vcd_file_io () =
  let t = simple_trace () in
  let path = Filename.temp_file "psm" ".vcd" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Vcd.write_file path t;
      let parsed = Vcd.parse_file path in
      Alcotest.(check bool) "roundtrip" true (FT.equal t parsed.Vcd.trace))

(* ---------- VCD timestamp semantics ---------- *)

let vcd_1bit body =
  "$timescale 1ns $end\n$var wire 1 ! a $end\n$enddefinitions $end\n" ^ body

let vcd_4bit body =
  "$timescale 1ns $end\n$var wire 4 ! a $end\n$enddefinitions $end\n" ^ body

let values_of parsed =
  Array.init (FT.length parsed.Vcd.trace) (fun t ->
      Bits.to_int (FT.value parsed.Vcd.trace ~time:t ~signal:0))

let test_vcd_gap_gcd () =
  (* #0/#5/#10: stride inferred as GCD 5, one sample per timestamp. *)
  let p = Vcd.parse (vcd_1bit "#0\n1!\n#5\n0!\n#10\n1!\n") in
  Alcotest.(check int) "uniform gaps" 3 (FT.length p.Vcd.trace);
  Alcotest.(check (array int)) "values" [| 1; 0; 1 |] (values_of p);
  (* #0/#5/#20: GCD still 5, held values fill the #10/#15 gap. *)
  let p = Vcd.parse (vcd_1bit "#0\n1!\n#5\n0!\n#20\n1!\n") in
  Alcotest.(check int) "held across gap" 5 (FT.length p.Vcd.trace);
  Alcotest.(check (array int)) "held values" [| 1; 0; 0; 0; 1 |] (values_of p)

let test_vcd_explicit_period () =
  (* Timestamps 0/3/10 sampled on a period-5 grid: each grid point takes
     the latest value at or before it, and the grid covers the last
     change. *)
  let text = vcd_1bit "#0\n1!\n#3\n0!\n#10\n1!\n" in
  let p = Vcd.parse ~period:5 text in
  Alcotest.(check (array int)) "period 5" [| 1; 0; 1 |] (values_of p);
  (* The same text without a period: GCD(3,7) = 1, so every instant. *)
  let p = Vcd.parse text in
  Alcotest.(check int) "gcd 1" 11 (FT.length p.Vcd.trace);
  Alcotest.(check (array int)) "gcd 1 values"
    [| 1; 1; 1; 0; 0; 0; 0; 0; 0; 0; 1 |] (values_of p)

let test_vcd_backwards_time () =
  match Vcd.parse (vcd_1bit "#0\n1!\n#5\n0!\n#3\n1!\n") with
  | _ -> Alcotest.fail "backwards time accepted"
  | exception Vcd.Parse_error e ->
      Alcotest.(check int) "line" 8 e.Reader.line;
      Alcotest.(check bool) "message" true
        (String.length e.Reader.message > 9
        && String.sub e.Reader.message 0 9 = "timestamp")

let test_vcd_equal_timestamps_merge () =
  (* A repeated #t extends the same sample instead of duplicating it. *)
  let p = Vcd.parse (vcd_1bit "#0\n1!\n#0\n0!\n#1\n1!\n") in
  Alcotest.(check (array int)) "merged" [| 0; 1 |] (values_of p)

(* ---------- VCD 4-state semantics ---------- *)

let test_vcd_xz_left_extension () =
  (* bx1 on a 4-bit var: leftmost digit x, so the missing upper bits
     extend with x — 3 unknown bits in all, value 0001 after coercion. *)
  let p = Vcd.parse (vcd_4bit "#0\nbx1 !\n") in
  Alcotest.(check (array int)) "x-extended value" [| 1 |] (values_of p);
  Alcotest.(check int) "x-extension counted" 3
    p.Vcd.stats.Reader.unknowns_coerced;
  (* bz: every bit of the variable is unknown. *)
  let p = Vcd.parse (vcd_4bit "#0\nbz !\n") in
  Alcotest.(check (array int)) "z value" [| 0 |] (values_of p);
  Alcotest.(check int) "z-extension counted" 4 p.Vcd.stats.Reader.unknowns_coerced;
  (* b01: leftmost digit 0, classic zero-extension, nothing unknown. *)
  let p = Vcd.parse (vcd_4bit "#0\nb01 !\n") in
  Alcotest.(check (array int)) "zero-extended" [| 1 |] (values_of p);
  Alcotest.(check int) "no unknowns" 0 p.Vcd.stats.Reader.unknowns_coerced

let test_vcd_unknown_policies () =
  let text = vcd_4bit "#0\nbx1 !\n" in
  let p = Vcd.parse ~unknowns:Reader.Zero text in
  Alcotest.(check int) "zero policy silent" 0 p.Vcd.stats.Reader.unknowns_coerced;
  Alcotest.(check (array int)) "zero policy value" [| 1 |] (values_of p);
  Alcotest.(check bool) "reject policy raises" true
    (match Vcd.parse ~unknowns:Reader.Reject text with
    | _ -> false
    | exception Vcd.Parse_error _ -> true);
  (* Scalar unknowns go through the same policy. *)
  Alcotest.(check bool) "scalar x rejected" true
    (match Vcd.parse ~unknowns:Reader.Reject (vcd_1bit "#0\nx!\n") with
    | _ -> false
    | exception Vcd.Parse_error _ -> true)

let test_vcd_trailing_vector_token () =
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (match Vcd.parse (vcd_4bit "#0\nb10") with
  | _ -> Alcotest.fail "trailing vector accepted"
  | exception Vcd.Parse_error e ->
      Alcotest.(check bool) "precise b error" true
        (contains e.Reader.message "not followed by an identifier code"));
  match Vcd.parse (vcd_4bit "#0\nb10 !\nr1.5") with
  | _ -> Alcotest.fail "trailing real accepted"
  | exception Vcd.Parse_error e ->
      Alcotest.(check bool) "precise r error" true
        (contains e.Reader.message "not followed by an identifier code")

let test_vcd_oversized_vector () =
  Alcotest.(check bool) "oversized rejected" true
    (match Vcd.parse (vcd_1bit "#0\nb101 !\n") with
    | _ -> false
    | exception Vcd.Parse_error _ -> true)

let test_vcd_error_position () =
  (* The bad scalar sits on line 8, column 1. *)
  match Vcd.parse (vcd_1bit "#0\n0!\n#1\n1!\nq!\n") with
  | _ -> Alcotest.fail "garbage accepted"
  | exception Vcd.Parse_error e ->
      Alcotest.(check int) "line" 8 e.Reader.line;
      Alcotest.(check int) "column" 1 e.Reader.column;
      Alcotest.(check string) "snippet" "q!" e.Reader.snippet

(* ---------- VCD streaming / parallel ---------- *)

let test_vcd_stream () =
  let text =
    "$timescale 1ns $end\n\
     $var wire 2 ! a $end\n\
     $var real 64 \" __power__ $end\n\
     $enddefinitions $end\n\
     #0\nb10 !\nr1.5 \"\n#5\nb01 !\nr2.5 \"\n#20\nb11 !\nr0 \"\n"
  in
  let times = ref [] and vals = ref [] and pows = ref [] in
  let stats =
    Vcd.stream (Reader.of_string text)
      ~init:(fun h ->
        Alcotest.(check bool) "has power" true h.Vcd.has_power;
        Alcotest.(check int) "arity" 1 (Interface.arity h.Vcd.interface);
        Alcotest.(check string) "timescale" "1ns" h.Vcd.timescale)
      ~sample:(fun ~time values ~power ->
        times := time :: !times;
        vals := Bits.to_int values.(0) :: !vals;
        pows := power :: !pows)
  in
  (* Raw timestamps, no resampling: the stream caller owns gap policy. *)
  Alcotest.(check (list int)) "raw times" [ 0; 5; 20 ] (List.rev !times);
  Alcotest.(check (list int)) "values" [ 2; 1; 3 ] (List.rev !vals);
  Alcotest.(check (list (float 0.))) "powers" [ 1.5; 2.5; 0. ] (List.rev !pows);
  Alcotest.(check int) "samples" 3 stats.Reader.samples;
  Alcotest.(check int) "bytes" (String.length text) stats.Reader.bytes

let big_trace n =
  let samples =
    Array.init n (fun t ->
        let data = (t * 7919) land 0xFF in
        sample (t land 3 = 0) data ((data * 5 + t) land 0xFF))
  in
  FT.of_samples (iface ()) samples

let with_jobs jobs f =
  let saved = Psm_par.default_jobs () in
  Psm_par.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Psm_par.set_jobs saved) f

let test_vcd_parallel_matches_sequential () =
  let n = 30_000 in
  let t = big_trace n in
  let power = PT.of_array (Array.init n (fun i -> float_of_int (i land 7))) in
  let text = Vcd.to_string ~power t in
  with_jobs 4 @@ fun () ->
  let seq = Vcd.parse ~parallel:false text in
  let par = Vcd.parse ~parallel:true text in
  Alcotest.(check bool) "traces equal" true (FT.equal seq.Vcd.trace par.Vcd.trace);
  Alcotest.(check bool) "roundtrip" true (FT.equal t par.Vcd.trace);
  (match (seq.Vcd.power, par.Vcd.power) with
  | Some a, Some b ->
      Alcotest.(check (array (float 0.))) "powers equal" (PT.to_array a) (PT.to_array b)
  | _ -> Alcotest.fail "power lost");
  Alcotest.(check int) "unknowns equal" seq.Vcd.stats.Reader.unknowns_coerced
    par.Vcd.stats.Reader.unknowns_coerced

let test_vcd_parallel_error_order () =
  (* Two injected errors: both paths must report the first, at the same
     position, even though a later chunk hits its error "sooner". *)
  let text = Vcd.to_string (big_trace 20_000) in
  let lines = String.split_on_char '\n' text in
  let nlines = List.length lines in
  let inject = [ nlines * 2 / 5; nlines * 4 / 5 ] in
  let text =
    List.concat
      (List.mapi (fun i l -> if List.mem i inject then [ "q!"; l ] else [ l ]) lines)
    |> String.concat "\n"
  in
  with_jobs 4 @@ fun () ->
  let err parallel =
    match Vcd.parse ~parallel text with
    | _ -> None
    | exception Vcd.Parse_error e -> Some e
  in
  match (err false, err true) with
  | Some a, Some b ->
      Alcotest.(check int) "same line" a.Reader.line b.Reader.line;
      Alcotest.(check int) "same column" a.Reader.column b.Reader.column;
      Alcotest.(check string) "same message" a.Reader.message b.Reader.message
  | _ -> Alcotest.fail "expected both paths to fail"

let test_vcd_parallel_comment_fallback () =
  (* A $comment block spanning chunk boundaries — full of decoy "#t"
     lines — must not corrupt the parallel parse: the chunker either
     avoids it or falls back to the sequential path. *)
  let t = big_trace 20_000 in
  let text = Vcd.to_string t in
  let comment =
    "$comment\n"
    ^ String.concat "\n"
        (List.init 4000 (fun i -> Printf.sprintf "#%d decoy decoy decoy" i))
    ^ "\n$end"
  in
  let lines = String.split_on_char '\n' text in
  let mid = List.length lines / 2 in
  let text =
    List.concat (List.mapi (fun i l -> if i = mid then [ comment; l ] else [ l ]) lines)
    |> String.concat "\n"
  in
  with_jobs 4 @@ fun () ->
  let seq = Vcd.parse ~parallel:false text in
  let par = Vcd.parse ~parallel:true text in
  Alcotest.(check bool) "comment spanning cuts" true
    (FT.equal seq.Vcd.trace par.Vcd.trace);
  Alcotest.(check bool) "roundtrip" true (FT.equal t par.Vcd.trace)

(* ---------- CSV ---------- *)

let test_csv_roundtrip () =
  let t = simple_trace () in
  let power = PT.of_array [| 0.25; 1.; 2.; 3.; 4. |] in
  let trace', power' = Csv.parse (Csv.to_string ~power t) in
  Alcotest.(check bool) "functional" true (FT.equal t trace');
  (match power' with
  | Some p ->
      Alcotest.(check (array (float 1e-12))) "power" (PT.to_array power) (PT.to_array p)
  | None -> Alcotest.fail "power lost")

let test_csv_no_power () =
  let t = simple_trace () in
  let trace', power' = Csv.parse (Csv.to_string t) in
  Alcotest.(check bool) "functional" true (FT.equal t trace');
  Alcotest.(check bool) "no power" true (power' = None)

let test_csv_rejects_bad_header () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Csv.parse "a,b,c\n1,2,3\n");
       false
     with Csv.Parse_error _ -> true)

let test_csv_error_position () =
  (* The malformed cell sits on line 3 of the file. *)
  match Csv.parse "time,a:4:in\n0,1\n1,zz\n" with
  | _ -> Alcotest.fail "bad hex accepted"
  | exception Csv.Parse_error e ->
      Alcotest.(check int) "line" 3 e.Reader.line;
      Alcotest.(check string) "snippet" "1,zz" e.Reader.snippet

(* ---------- SAIF ---------- *)

let test_saif_counters () =
  let t = simple_trace () in
  (* en: 0 1 1 1 0 -> T1 = 3, TC = 2. *)
  let c = Psm_trace.Saif.bit_counters t ~signal:0 ~bit:0 in
  Alcotest.(check int) "T0" 2 c.Psm_trace.Saif.t0;
  Alcotest.(check int) "T1" 3 c.Psm_trace.Saif.t1;
  Alcotest.(check int) "TC" 2 c.Psm_trace.Saif.tc

let test_saif_document () =
  let t = simple_trace () in
  let saif = Psm_trace.Saif.to_string ~design:"demo" t in
  let contains needle =
    let n = String.length needle and h = String.length saif in
    let rec go i = i + n <= h && (String.sub saif i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header" true (contains "(SAIFILE");
  Alcotest.(check bool) "design" true (contains "(DESIGN \"demo\")");
  Alcotest.(check bool) "duration" true (contains "(DURATION 5)");
  Alcotest.(check bool) "bit select" true (contains "data\\[7\\]");
  Alcotest.(check bool) "balanced parens" true
    (String.fold_left (fun acc c -> acc + (match c with '(' -> 1 | ')' -> -1 | _ -> 0)) 0 saif
     = 0)

let test_saif_reader_roundtrip () =
  let t = simple_trace () in
  let p = Psm_trace.Saif.parse (Psm_trace.Saif.to_string ~design:"demo" t) in
  Alcotest.(check (option string)) "design" (Some "demo") p.Psm_trace.Saif.design;
  Alcotest.(check (option int)) "duration" (Some 5) p.Psm_trace.Saif.duration;
  (* Nets come back in writer order, instance-qualified, unescaped, with
     the counters the writer computed. *)
  let iface = FT.interface t in
  let expected =
    List.concat_map
      (fun signal ->
        let s = Interface.signal iface signal in
        List.init s.Signal.width (fun bit ->
            let name =
              if s.Signal.width = 1 then Printf.sprintf "demo/%s" s.Signal.name
              else Printf.sprintf "demo/%s[%d]" s.Signal.name bit
            in
            (name, Psm_trace.Saif.bit_counters t ~signal ~bit)))
      (List.init (Interface.arity iface) Fun.id)
  in
  Alcotest.(check int) "net count" (List.length expected)
    (List.length p.Psm_trace.Saif.nets);
  List.iter2
    (fun (en, ec) (gn, (gc : Psm_trace.Saif.counters)) ->
      Alcotest.(check string) "net name" en gn;
      Alcotest.(check int) (en ^ " T0") ec.Psm_trace.Saif.t0 gc.Psm_trace.Saif.t0;
      Alcotest.(check int) (en ^ " T1") ec.Psm_trace.Saif.t1 gc.Psm_trace.Saif.t1;
      Alcotest.(check int) (en ^ " TC") ec.Psm_trace.Saif.tc gc.Psm_trace.Saif.tc)
    expected p.Psm_trace.Saif.nets

let test_saif_reader_rejects_garbage () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Psm_trace.Saif.parse "(NOTSAIF)");
       false
     with Psm_trace.Saif.Parse_error _ -> true);
  Alcotest.(check bool) "unbalanced" true
    (try
       ignore (Psm_trace.Saif.parse "(SAIFILE (INSTANCE top (NET");
       false
     with Psm_trace.Saif.Parse_error _ -> true)

let test_saif_t0_t1_sum () =
  let t = simple_trace () in
  let iface = FT.interface t in
  for signal = 0 to Interface.arity iface - 1 do
    let s = Interface.signal iface signal in
    for bit = 0 to s.Signal.width - 1 do
      let c = Psm_trace.Saif.bit_counters t ~signal ~bit in
      Alcotest.(check int) "T0+T1 = duration" (FT.length t)
        (c.Psm_trace.Saif.t0 + c.Psm_trace.Saif.t1)
    done
  done

(* ---------- trace stats ---------- *)

let test_per_signal_toggles () =
  let t = simple_trace () in
  let stats = Stats.per_signal t in
  let by_name name =
    Array.to_list stats
    |> List.find (fun (a : Stats.signal_activity) -> a.signal.Signal.name = name)
  in
  Alcotest.(check int) "en toggles" 2 (by_name "en").Stats.toggles;
  Alcotest.(check int) "data toggles" 5 (by_name "data").Stats.toggles;
  Alcotest.(check int) "q toggles" 5 (by_name "q").Stats.toggles

let test_distinct_samples () =
  let t = simple_trace () in
  Alcotest.(check int) "distinct" 5 (Stats.distinct_samples t);
  let constant =
    FT.of_samples (iface ()) (Array.make 10 (sample true 1 1))
  in
  Alcotest.(check int) "constant" 1 (Stats.distinct_samples constant)

let test_switching_density () =
  let t = simple_trace () in
  (* 12 toggles over 4 cycle-pairs x 17 bits. *)
  Alcotest.(check (float 1e-9)) "density" (12. /. (17. *. 4.)) (Stats.switching_density t)

(* ---------- properties ---------- *)

let arb_trace =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 40 in
      let* samples =
        list_size (return n)
          (map2
             (fun en data ->
               [| Bits.of_bool en;
                  Bits.of_int ~width:8 (data land 0xFF);
                  Bits.of_int ~width:8 ((data * 7) land 0xFF) |])
             bool (int_bound 255))
      in
      return (FT.of_samples (iface ()) (Array.of_list samples)))
  in
  QCheck.make gen

(* An interface wide enough to force multi-character VCD id codes
   (id_code rolls over past 94 variables). *)
let wide_iface =
  Interface.create
    (List.init 100 (fun i ->
         let w = 1 + (i mod 8) in
         let name = Printf.sprintf "s%d" i in
         if i mod 3 = 0 then Signal.output name w else Signal.input name w))

let arb_wide_trace =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 12 in
      let* seeds = list_size (return n) (int_bound 0x3FFFFFF) in
      let samples =
        List.map
          (fun seed ->
            Array.init 100 (fun i ->
                let w = 1 + (i mod 8) in
                Bits.of_int ~width:w (seed * (i + 17) land ((1 lsl w) - 1))))
          seeds
      in
      return (FT.of_samples wide_iface (Array.of_list samples)))
  in
  QCheck.make gen

let is_ts l = String.length l > 1 && l.[0] = '#'

(* Multiply the writer's per-cycle timestamps by [stride]; with [drop],
   also erase timestamp lines whose change group is empty (except the
   final one), simulating a tool that only dumps at change points. *)
let scale_timestamps ?(drop = false) ~stride text =
  let lines = String.split_on_char '\n' text in
  let scaled =
    List.map
      (fun l ->
        if is_ts l then
          match int_of_string_opt (String.sub l 1 (String.length l - 1)) with
          | Some t -> Printf.sprintf "#%d" (t * stride)
          | None -> l
        else l)
      lines
  in
  let result =
    if not drop then scaled
    else begin
      let last_ts =
        List.fold_left
          (fun (i, last) l -> (i + 1, if is_ts l then i else last))
          (0, -1) scaled
        |> snd
      in
      let rec keep i = function
        | [] -> []
        | l :: rest ->
            let group_empty =
              match rest with next :: _ -> is_ts next || next = "" | [] -> true
            in
            if is_ts l && i <> last_ts && group_empty then keep (i + 1) rest
            else l :: keep (i + 1) rest
      in
      keep 0 scaled
    end
  in
  String.concat "\n" result

(* Replace 0-valued bits with x/z in the body of a writer-emitted VCD:
   under the coercing policies the parse result must be unchanged. *)
let inject_unknowns text =
  let lines = String.split_on_char '\n' text in
  let in_body = ref false in
  let injected = ref 0 in
  let out =
    List.map
      (fun l ->
        if not !in_body then begin
          if l = "$enddefinitions $end" then in_body := true;
          l
        end
        else if l = "" || l.[0] = '#' || l.[0] = '$' then l
        else
          match l.[0] with
          | '0' ->
              incr injected;
              "x" ^ String.sub l 1 (String.length l - 1)
          | 'b' -> (
              match String.index_opt l ' ' with
              | Some sp ->
                  String.mapi
                    (fun i c ->
                      if i > 0 && i < sp && c = '0' then begin
                        incr injected;
                        'z'
                      end
                      else c)
                    l
              | None -> l)
          | _ -> l)
      lines
  in
  (String.concat "\n" out, !injected)

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:50 ~name arb f)

let properties =
  [ prop "vcd parser total on junk" (QCheck.make QCheck.Gen.(string_size ~gen:printable (int_range 0 400)))
      (fun junk ->
        (* Any input either parses or raises Parse_error — never crashes
           with an unexpected exception. *)
        try
          ignore (Vcd.parse junk);
          true
        with
        | Vcd.Parse_error _ -> true
        | _ -> false);
    prop "csv parser total on junk" (QCheck.make QCheck.Gen.(string_size ~gen:printable (int_range 0 400)))
      (fun junk ->
        try
          ignore (Csv.parse junk);
          true
        with
        | Csv.Parse_error _ -> true
        | _ -> false);
    prop "saif TC equals trace_stats toggles" arb_trace (fun t ->
        (* Summing SAIF per-bit toggle counts over a signal reproduces the
           Trace_stats per-signal toggle count. *)
        let iface = FT.interface t in
        let stats = Stats.per_signal t in
        Array.for_all
          (fun i ->
            let s = Interface.signal iface i in
            let saif_total = ref 0 in
            for bit = 0 to s.Signal.width - 1 do
              saif_total := !saif_total + (Psm_trace.Saif.bit_counters t ~signal:i ~bit).Psm_trace.Saif.tc
            done;
            !saif_total = stats.(i).Stats.toggles)
          (Array.init (Interface.arity iface) Fun.id));
    prop "vcd roundtrip" arb_trace (fun t ->
        FT.equal t (Vcd.parse (Vcd.to_string t)).Vcd.trace);
    prop "vcd roundtrip >94 signals with power" arb_wide_trace (fun t ->
        (* Multi-character id codes, an attached power trace, and the
           directions comment all survive the trip. *)
        let power =
          PT.of_array
            (Array.init (FT.length t) (fun i -> float_of_int (i mod 5) +. 0.25))
        in
        let parsed = Vcd.parse (Vcd.to_string ~power t) in
        FT.equal t parsed.Vcd.trace
        && Interface.equal wide_iface (FT.interface parsed.Vcd.trace)
        && (match parsed.Vcd.power with
           | Some p -> PT.to_array p = PT.to_array power
           | None -> false));
    prop "vcd gap expansion inverts change-only dumping"
      (QCheck.pair arb_trace (QCheck.make QCheck.Gen.(int_range 2 7)))
      (fun (t, stride) ->
        (* Scale to a sparse change-only dump; parsing with the matching
           period must reconstruct the original trace. *)
        let text = scale_timestamps ~drop:true ~stride (Vcd.to_string t) in
        FT.equal t (Vcd.parse ~period:stride text).Vcd.trace);
    prop "vcd stride inference from uniform timestamps"
      (QCheck.pair arb_trace (QCheck.make QCheck.Gen.(int_range 2 7)))
      (fun (t, stride) ->
        (* No period given: the GCD of the deltas recovers the stride. *)
        let text = scale_timestamps ~stride (Vcd.to_string t) in
        FT.equal t (Vcd.parse text).Vcd.trace);
    prop "vcd x/z on zero bits is identity under coercion" arb_trace (fun t ->
        let text, injected = inject_unknowns (Vcd.to_string t) in
        let counted = Vcd.parse text in
        let zeroed = Vcd.parse ~unknowns:Reader.Zero text in
        FT.equal t counted.Vcd.trace
        && FT.equal t zeroed.Vcd.trace
        && zeroed.Vcd.stats.Reader.unknowns_coerced = 0
        && (injected = 0 || counted.Vcd.stats.Reader.unknowns_coerced >= injected));
    prop "vcd parallel parse equals sequential" arb_wide_trace (fun t ->
        let text = Vcd.to_string t in
        with_jobs 3 @@ fun () ->
        let seq = Vcd.parse ~parallel:false text in
        let par = Vcd.parse ~parallel:true text in
        FT.equal seq.Vcd.trace par.Vcd.trace);
    prop "saif reader inverts writer counters" arb_trace (fun t ->
        let p = Psm_trace.Saif.parse (Psm_trace.Saif.to_string t) in
        p.Psm_trace.Saif.duration = Some (FT.length t)
        && List.for_all2
             (fun (_, (a : Psm_trace.Saif.counters)) b ->
               a.Psm_trace.Saif.t0 + a.Psm_trace.Saif.t1 = FT.length t && a = b)
             p.Psm_trace.Saif.nets
             (List.concat_map
                (fun signal ->
                  let s = Interface.signal (FT.interface t) signal in
                  List.init s.Signal.width (fun bit ->
                      Psm_trace.Saif.bit_counters t ~signal ~bit))
                (List.init (Interface.arity (FT.interface t)) Fun.id)));
    prop "saif parser total on junk"
      (QCheck.make QCheck.Gen.(string_size ~gen:printable (int_range 0 400)))
      (fun junk ->
        try
          ignore (Psm_trace.Saif.parse junk);
          true
        with
        | Psm_trace.Saif.Parse_error _ -> true
        | _ -> false);
    prop "csv roundtrip" arb_trace (fun t -> FT.equal t (fst (Csv.parse (Csv.to_string t))));
    prop "hamming series bounded by interface width" arb_trace (fun t ->
        Array.for_all (fun h -> h >= 0. && h <= 9.) (FT.input_hamming_series t));
    prop "sub+append identity" arb_trace (fun t ->
        let n = FT.length t in
        QCheck.assume (n >= 2);
        let k = n / 2 in
        FT.equal t
          (FT.append (FT.sub t ~start:0 ~stop:(k - 1)) (FT.sub t ~start:k ~stop:(n - 1)))) ]

let suite =
  ( "trace",
    [ Alcotest.test_case "signal validation" `Quick test_signal_validation;
      Alcotest.test_case "interface lookup" `Quick test_interface_lookup;
      Alcotest.test_case "interface widths" `Quick test_interface_widths;
      Alcotest.test_case "interface duplicates" `Quick test_interface_duplicate;
      Alcotest.test_case "trace accessors" `Quick test_trace_accessors;
      Alcotest.test_case "builder" `Quick test_builder_matches_of_samples;
      Alcotest.test_case "builder validates" `Quick test_builder_validates;
      Alcotest.test_case "sub/append" `Quick test_sub_append;
      Alcotest.test_case "input hamming series" `Quick test_input_hamming;
      Alcotest.test_case "wide values" `Quick test_wide_value_trace;
      Alcotest.test_case "power attributes" `Quick test_power_attributes;
      Alcotest.test_case "power rejects negative" `Quick test_power_rejects_negative;
      Alcotest.test_case "power total/mean" `Quick test_power_total_mean;
      Alcotest.test_case "MRE" `Quick test_mre;
      Alcotest.test_case "MRE zero reference" `Quick test_mre_zero_reference;
      Alcotest.test_case "vcd roundtrip" `Quick test_vcd_roundtrip;
      Alcotest.test_case "vcd without power" `Quick test_vcd_no_power;
      Alcotest.test_case "vcd directions" `Quick test_vcd_preserves_directions;
      Alcotest.test_case "vcd foreign input" `Quick test_vcd_foreign_input;
      Alcotest.test_case "vcd rejects garbage" `Quick test_vcd_rejects_garbage;
      Alcotest.test_case "vcd file io" `Quick test_vcd_file_io;
      Alcotest.test_case "vcd timestamp gaps (gcd)" `Quick test_vcd_gap_gcd;
      Alcotest.test_case "vcd explicit period" `Quick test_vcd_explicit_period;
      Alcotest.test_case "vcd backwards time" `Quick test_vcd_backwards_time;
      Alcotest.test_case "vcd equal timestamps" `Quick test_vcd_equal_timestamps_merge;
      Alcotest.test_case "vcd x/z left-extension" `Quick test_vcd_xz_left_extension;
      Alcotest.test_case "vcd unknown policies" `Quick test_vcd_unknown_policies;
      Alcotest.test_case "vcd trailing vector token" `Quick
        test_vcd_trailing_vector_token;
      Alcotest.test_case "vcd oversized vector" `Quick test_vcd_oversized_vector;
      Alcotest.test_case "vcd error position" `Quick test_vcd_error_position;
      Alcotest.test_case "vcd stream" `Quick test_vcd_stream;
      Alcotest.test_case "vcd parallel == sequential" `Quick
        test_vcd_parallel_matches_sequential;
      Alcotest.test_case "vcd parallel error order" `Quick
        test_vcd_parallel_error_order;
      Alcotest.test_case "vcd parallel comment fallback" `Quick
        test_vcd_parallel_comment_fallback;
      Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
      Alcotest.test_case "csv without power" `Quick test_csv_no_power;
      Alcotest.test_case "csv bad header" `Quick test_csv_rejects_bad_header;
      Alcotest.test_case "csv error position" `Quick test_csv_error_position;
      Alcotest.test_case "saif counters" `Quick test_saif_counters;
      Alcotest.test_case "saif document" `Quick test_saif_document;
      Alcotest.test_case "saif reader roundtrip" `Quick test_saif_reader_roundtrip;
      Alcotest.test_case "saif reader rejects garbage" `Quick
        test_saif_reader_rejects_garbage;
      Alcotest.test_case "saif t0+t1" `Quick test_saif_t0_t1_sum;
      Alcotest.test_case "per-signal toggles" `Quick test_per_signal_toggles;
      Alcotest.test_case "distinct samples" `Quick test_distinct_samples;
      Alcotest.test_case "switching density" `Quick test_switching_density ]
    @ properties )
