(* Tests for Psm_hmm: the HMM λ = ⟨A, B, π⟩, filtering, the multi-PSM
   simulator with resynchronization, and the accuracy metrics. *)

module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface
module FT = Psm_trace.Functional_trace
module PT = Psm_trace.Power_trace
module Assertion = Psm_core.Assertion
module Psm = Psm_core.Psm
module Generator = Psm_core.Generator
module Hmm = Psm_hmm.Hmm
module Multi_sim = Psm_hmm.Multi_sim
module Accuracy = Psm_hmm.Accuracy
module Vocabulary = Psm_mining.Vocabulary
module Prop_trace = Psm_mining.Prop_trace
module Table = Prop_trace.Table

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let close = Alcotest.(check (float 1e-9))

(* Same synthetic world as test_core: one 4-bit signal whose value is the
   proposition. *)
let world values powers =
  let iface = Interface.create [ Signal.input "s" 4; Signal.output "o" 1 ] in
  let atoms = List.init 16 (fun v -> Psm_mining.Atomic.eq_const 0 (Bits.of_int ~width:4 v)) in
  let table = Table.create (Vocabulary.create iface atoms) in
  let samples =
    Array.of_list
      (List.map (fun v -> [| Bits.of_int ~width:4 v; Bits.of_bool false |]) values)
  in
  let trace = FT.of_samples iface samples in
  let gamma = Prop_trace.of_functional table trace in
  let delta = PT.of_array (Array.of_list powers) in
  (table, trace, gamma, delta)

let trace_of table values =
  let iface = Vocabulary.interface (Table.vocabulary table) in
  FT.of_samples iface
    (Array.of_list
       (List.map (fun v -> [| Bits.of_int ~width:4 v; Bits.of_bool false |]) values))

let train values powers =
  let table, trace, gamma, delta = world values powers in
  let psm = Generator.generate (Psm.empty table) ~trace:0 gamma delta in
  let simplified = Psm_core.Simplify.simplify psm in
  let joined = Psm_core.Join.join simplified in
  (table, trace, delta, joined)

(* ---------- HMM construction ---------- *)

let test_hmm_rows_stochastic () =
  let _, _, _, psm = train [ 0; 0; 0; 1; 1; 1; 0; 0; 0; 2; 2; 2 ] (List.init 12 (fun i -> float_of_int (i mod 3 + 1))) in
  let hmm = Hmm.build psm in
  let m = Hmm.state_count hmm in
  for i = 0 to m - 1 do
    let total = ref 0. in
    for j = 0 to m - 1 do
      let a = Hmm.a hmm i j in
      check_bool "non-negative" true (a >= 0.);
      total := !total +. a
    done;
    Alcotest.(check (float 1e-9)) "row sums to 1" 1. !total
  done

let test_hmm_pi_from_initials () =
  let table, _, _, _ = world [ 0; 1 ] [ 1.; 1. ] in
  let attr mu : Psm_core.Power_attr.t = { mu; sigma = 0.; n = 5; intervals = [] } in
  let psm = Psm.empty table in
  let psm, a = Psm.add_state psm (Assertion.Until (0, 1)) (attr 1.) in
  let psm, b = Psm.add_state psm (Assertion.Until (1, 0)) (attr 2.) in
  let psm = Psm.add_initial psm a in
  let psm = Psm.add_initial psm a in
  let psm = Psm.add_initial psm b in
  let hmm = Hmm.build psm in
  let pi = Hmm.pi hmm in
  close "pi[a]" (2. /. 3.) pi.(Hmm.row_of_state hmm a);
  close "pi[b]" (1. /. 3.) pi.(Hmm.row_of_state hmm b)

let test_hmm_b_entry () =
  (* A joined state with components entering on different propositions
     spreads its emission mass. *)
  let table, _, _, _ = world [ 0; 1; 2; 3 ] [ 1.; 1.; 1.; 1. ] in
  let attr : Psm_core.Power_attr.t = { mu = 1.; sigma = 0.; n = 5; intervals = [] } in
  let psm = Psm.empty table in
  let psm, a = Psm.add_state psm (Assertion.Until (0, 1)) attr in
  let psm, b = Psm.add_state psm (Assertion.Until (2, 3)) attr in
  let joined =
    fst
      (Psm.merge_clusters psm ~internal_edges:`Self_loop
         [ { Psm.members = [ a; b ];
             new_assertion = Assertion.alt [ Assertion.Until (0, 1); Assertion.Until (2, 3) ];
             new_attr = attr;
             new_components = [ (Assertion.Until (0, 1), attr); (Assertion.Until (2, 3), attr) ] } ])
  in
  let hmm = Hmm.build joined in
  let row = Hmm.row_of_state hmm (List.hd (Psm.states joined)).Psm.id in
  close "entry 0" 0.5 (Hmm.b_entry hmm row 0);
  close "entry 2" 0.5 (Hmm.b_entry hmm row 2);
  close "entry 1" 0. (Hmm.b_entry hmm row 1)

let test_hmm_predict_normalized () =
  let _, _, _, psm = train [ 0; 0; 1; 1; 0; 0; 2; 2; 0; 0 ] (List.init 10 (fun i -> float_of_int (1 + (i mod 4)))) in
  let hmm = Hmm.build psm in
  let belief = Hmm.initial_belief hmm in
  let belief' = Hmm.predict hmm belief in
  let total = Array.fold_left ( +. ) 0. belief' in
  close "normalized" 1. total

let test_hmm_ban_and_reset () =
  (* Powers far apart so nothing merges and inter-state edges survive. *)
  let values = [ 0; 0; 1; 1; 2; 2; 0; 0; 1; 1; 2; 2 ] in
  let _, _, _, psm = train values (List.map (fun v -> 10. ** float_of_int v) values) in
  let hmm = Hmm.build psm in
  (* Find a nonzero A entry, ban it, check zero, reset, check restored. *)
  let m = Hmm.state_count hmm in
  let found = ref None in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      if !found = None && Hmm.a hmm i j > 0. && i <> j then found := Some (i, j)
    done
  done;
  match !found with
  | None -> Alcotest.fail "no transitions at all"
  | Some (i, j) ->
      let original = Hmm.a hmm i j in
      Hmm.ban hmm ~src_row:i ~dst_row:j;
      close "banned" 0. (Hmm.a hmm i j);
      Hmm.reset_bans hmm;
      close "restored" original (Hmm.a hmm i j)

let test_hmm_transition_counts_weighting () =
  (* Frequency-weighted A: a destination entered 3x as often in training
     gets 3x the probability. *)
  let table, _, _, _ = world [ 0; 1; 2 ] [ 1.; 1.; 1. ] in
  let attr : Psm_core.Power_attr.t = { mu = 1.; sigma = 0.; n = 5; intervals = [] } in
  let psm = Psm.empty table in
  let psm, src = Psm.add_state psm (Assertion.Until (0, 1)) attr in
  let psm, d1 = Psm.add_state psm (Assertion.Until (1, 0)) attr in
  let psm, d2 = Psm.add_state psm (Assertion.Until (2, 0)) { attr with mu = 9. } in
  let psm = Psm.add_transition psm ~src ~guard:1 ~dst:d1 in
  let psm = Psm.add_transition psm ~src ~guard:2 ~dst:d2 in
  let hmm = Hmm.build ~transition_counts:[ ((src, d1), 3.); ((src, d2), 1.) ] psm in
  let r = Hmm.row_of_state hmm src in
  close "3:1 weighting" 0.75 (Hmm.a hmm r (Hmm.row_of_state hmm d1))

(* ---------- multi-PSM simulation ---------- *)

let test_multi_sim_replays_training () =
  let values = [ 0; 0; 0; 1; 1; 1; 0; 0; 0; 2; 2; 2; 0; 0; 0 ] in
  let powers = List.map (fun v -> float_of_int ((v * 4) + 1)) values in
  let _, trace, delta, psm = train values powers in
  let hmm = Hmm.build psm in
  let result = Multi_sim.simulate hmm trace in
  check_int "no wrong instants" 0 result.Multi_sim.wrong_instants;
  let report = Accuracy.of_result ~reference:delta result in
  Alcotest.(check bool) "tiny MRE" true (report.Accuracy.mre < 1e-9)

let test_multi_sim_cascade_states () =
  (* Force a Seq state by making three power-similar adjacent states, and
     check the cascade is tracked through. *)
  let values = [ 0; 0; 1; 1; 2; 2; 9; 9; 9; 0; 0; 1; 1; 2; 2; 9; 9; 9 ] in
  let powers =
    List.map (fun v -> if v = 9 then 50. else 5.) values
  in
  let _, trace, _, psm = train values powers in
  let hmm = Hmm.build psm in
  let result = Multi_sim.simulate hmm trace in
  check_int "no wrong instants" 0 result.Multi_sim.wrong_instants;
  (* Spot check: the low-power cascade instants estimate 5. *)
  close "cascade power" 5. result.Multi_sim.estimate.(2);
  close "high power" 50. result.Multi_sim.estimate.(7)

let test_multi_sim_resync_recovers () =
  (* Training alternates a/b; the test trace interposes an unknown
     proposition. With resync the machine must recover and keep
     estimating; the unknown instants are counted wrong. *)
  let values = [ 0; 0; 0; 1; 1; 1; 0; 0; 0; 1; 1; 1 ] in
  let powers = List.map (fun v -> if v = 0 then 2. else 8.) values in
  let table, _, _, psm = train values powers in
  let hmm = Hmm.build psm in
  let test_trace = trace_of table [ 0; 0; 0; 7; 7; 1; 1; 1; 0; 0; 1; 1 ] in
  let result = Multi_sim.simulate hmm test_trace in
  check_bool "some wrong instants" true (result.Multi_sim.wrong_instants >= 2);
  check_bool "recovers" true (result.Multi_sim.state_trace.(6) >= 0);
  check_bool "wsp fraction" true (result.Multi_sim.wsp < 0.5)

let test_multi_sim_resync_ablation () =
  (* Without resync, recovery requires the origin state itself to match;
     jumping elsewhere is forbidden, so more instants stay wrong. *)
  let values = [ 0; 0; 0; 1; 1; 1; 2; 2; 2; 0; 0; 0; 1; 1; 1; 2; 2; 2 ] in
  let powers = List.map (fun v -> float_of_int ((v * 3) + 1)) values in
  let table, _, _, psm = train values powers in
  let hmm = Hmm.build psm in
  (* Jump from inside the 0-run to the 2-run (never seen as a 0->2
     transition at that point), then behave normally. *)
  let test_trace = trace_of table [ 0; 0; 7; 2; 2; 2; 0; 0; 0; 1; 1; 1 ] in
  let with_resync = Multi_sim.simulate hmm test_trace in
  let without =
    Multi_sim.simulate
      ~config:{ Multi_sim.default with Multi_sim.resync_enabled = false }
      hmm test_trace
  in
  check_bool "resync at least as good" true
    (with_resync.Multi_sim.wrong_instants <= without.Multi_sim.wrong_instants)

let test_multi_sim_never_estimates_negative () =
  let values = [ 0; 0; 1; 1; 0; 0; 1; 1 ] in
  let powers = [ 1.; 1.; 5.; 5.; 1.; 1.; 5.; 5. ] in
  let table, _, _, psm = train values powers in
  let hmm = Hmm.build psm in
  let test_trace = trace_of table [ 0; 1; 0; 1; 7; 7; 0; 1 ] in
  let result = Multi_sim.simulate hmm test_trace in
  Array.iter (fun e -> check_bool "non-negative" true (e >= 0.)) result.Multi_sim.estimate

let test_stepper_incremental_matches_batch () =
  let values = [ 0; 0; 0; 1; 1; 1; 2; 2; 0; 0; 1; 1 ] in
  let powers = List.map (fun v -> float_of_int (v + 1)) values in
  let _, trace, _, psm = train values powers in
  let hmm = Hmm.build psm in
  let batch = Multi_sim.simulate hmm trace in
  let stepper = Multi_sim.Stepper.create hmm in
  FT.iter
    (fun t sample ->
      let e, sid = Multi_sim.Stepper.step stepper sample in
      close "same estimate" batch.Multi_sim.estimate.(t) e;
      check_int "same state" batch.Multi_sim.state_trace.(t) sid)
    trace

(* ---------- offline (Viterbi) decoding ---------- *)

let test_viterbi_matches_online_on_clean_replay () =
  let values = [ 0; 0; 0; 1; 1; 1; 0; 0; 0; 2; 2; 2; 0; 0; 0 ] in
  let powers = List.map (fun v -> float_of_int ((v * 4) + 1)) values in
  let _, trace, delta, psm = train values powers in
  let hmm = Hmm.build psm in
  let offline = Psm_hmm.Offline.evaluate hmm trace ~reference:delta in
  Alcotest.(check bool) "near exact" true (offline.Accuracy.mre < 1e-9)

let test_viterbi_known_lattice () =
  (* Two far-apart power levels with distinct observations: the decoded
     sequence must match the observation segmentation exactly. *)
  let values = [ 0; 0; 0; 3; 3; 3; 3; 0; 0 ] in
  let powers = List.map (fun v -> if v = 0 then 1. else 100.) values in
  let table, trace, _, psm = train values powers in
  ignore table;
  let hmm = Hmm.build psm in
  let decoded = Psm_hmm.Offline.decode hmm trace in
  let psm_of t = (Psm.state psm decoded.(t)).Psm.attr.Psm_core.Power_attr.mu in
  Alcotest.(check (float 1e-9)) "low state at 0" 1. (psm_of 0);
  Alcotest.(check (float 1e-9)) "high state at 4" 100. (psm_of 4);
  Alcotest.(check (float 1e-9)) "low again at 8" 1. (psm_of 8)

let test_viterbi_handles_unknown_observations () =
  let values = [ 0; 0; 0; 1; 1; 1 ] in
  let powers = [ 2.; 2.; 2.; 8.; 8.; 8. ] in
  let table, _, _, psm = train values powers in
  let hmm = Hmm.build psm in
  (* A test trace with an unseen proposition in the middle. *)
  let test_trace = trace_of table [ 0; 0; 7; 1; 1; 1 ] in
  let est = Psm_hmm.Offline.estimate hmm test_trace in
  Alcotest.(check int) "full length" 6 (Array.length est);
  Array.iter (fun e -> Alcotest.(check bool) "finite" true (Float.is_finite e)) est

(* ---------- forward filtering ---------- *)

let test_filtering_posteriors_normalized () =
  let values = [ 0; 0; 1; 1; 2; 2; 0; 0 ] in
  let powers = List.map (fun v -> float_of_int ((v * 5) + 1)) values in
  let _, trace, _, psm = train values powers in
  let hmm = Hmm.build psm in
  let f = Psm_hmm.Filtering.create hmm in
  let obs =
    Array.init (FT.length trace) (fun time ->
        Table.classify (Psm.prop_table psm) (FT.sample trace ~time))
  in
  let post = Psm_hmm.Filtering.posteriors f obs in
  Array.iter
    (fun belief ->
      let total = Array.fold_left ( +. ) 0. belief in
      Alcotest.(check (float 1e-9)) "normalized" 1. total)
    post

let test_filtering_map_matches_truth_on_clean_chain () =
  let values = [ 0; 0; 0; 3; 3; 3; 0; 0; 0 ] in
  let powers = List.map (fun v -> if v = 0 then 1. else 50.) values in
  let _, trace, _, psm = train values powers in
  let hmm = Hmm.build psm in
  let f = Psm_hmm.Filtering.create hmm in
  let est = Psm_hmm.Filtering.expected_power f trace in
  (* Posterior-weighted power lands close to the truth everywhere. *)
  List.iteri
    (fun t truth ->
      Alcotest.(check bool)
        (Printf.sprintf "instant %d" t)
        true
        (abs_float (est.(t) -. truth) /. truth < 0.25))
    powers

let test_filtering_likelihood_ranks_workloads () =
  (* A trace from the training distribution scores higher per instant
     than a shuffled alien trace. *)
  let values = [ 0; 0; 0; 1; 1; 1; 0; 0; 0; 1; 1; 1; 0; 0; 0; 1; 1; 1 ] in
  let powers = List.map (fun v -> float_of_int ((v * 5) + 1)) values in
  let table, trace, _, psm = train values powers in
  let hmm = Hmm.build psm in
  let f = Psm_hmm.Filtering.create hmm in
  let obs_of tr =
    Array.init (FT.length tr) (fun time ->
        Table.classify (Psm.prop_table psm) (FT.sample tr ~time))
  in
  let familiar = Psm_hmm.Filtering.log_likelihood f (obs_of trace) in
  let alien = trace_of table [ 1; 0; 1; 0; 1; 0; 1; 0; 1; 0; 1; 0; 1; 0; 1; 0; 1; 0 ] in
  let alien_ll = Psm_hmm.Filtering.log_likelihood f (obs_of alien) in
  Alcotest.(check bool) "familiar more likely" true (familiar > alien_ll)

(* ---------- accuracy ---------- *)

let test_accuracy_zero_error () =
  let reference = PT.of_array [| 1.; 2.; 3. |] in
  let r = Accuracy.of_estimate ~reference ~estimate:[| 1.; 2.; 3. |] ~wsp:0. in
  close "mre" 0. r.Accuracy.mre;
  close "rmse" 0. r.Accuracy.rmse;
  close "total" 0. r.Accuracy.total_energy_error

let test_accuracy_known_error () =
  let reference = PT.of_array [| 10.; 10. |] in
  let r = Accuracy.of_estimate ~reference ~estimate:[| 12.; 10. |] ~wsp:0.25 in
  close "mre" 0.1 r.Accuracy.mre;
  close "rmse" (sqrt 2.) r.Accuracy.rmse;
  close "total" 0.1 r.Accuracy.total_energy_error;
  close "wsp carried" 0.25 r.Accuracy.wsp

let test_accuracy_validates_lengths () =
  let reference = PT.of_array [| 1. |] in
  check_bool "length mismatch" true
    (try
       ignore (Accuracy.of_estimate ~reference ~estimate:[| 1.; 2. |] ~wsp:0.);
       false
     with Invalid_argument _ -> true)

(* ---------- kernel selection ---------- *)

let test_kernel_selection () =
  let values = [ 0; 0; 1; 1; 2; 2; 0; 0; 1; 1; 2; 2 ] in
  let _, _, _, psm = train values (List.map (fun v -> 10. ** float_of_int v) values) in
  let hmm = Hmm.build psm in
  (* Mined chains are sparse: auto picks the CSR kernel. *)
  check_bool "auto picks sparse" true (Hmm.kernel hmm = `Sparse);
  Hmm.set_kernel hmm `Dense;
  check_bool "forced dense" true (Hmm.kernel hmm = `Dense);
  Hmm.set_kernel hmm `Auto;
  check_bool "auto again" true (Hmm.kernel hmm = `Sparse);
  let csr = Hmm.a_sparse hmm in
  check_bool "density consistent" true
    (Psm_hmm.Sparse.density csr <= Psm_hmm.Sparse.dense_threshold);
  check_int "nnz matches dense"
    (let m = Hmm.state_count hmm in
     let count = ref 0 in
     for i = 0 to m - 1 do
       for j = 0 to m - 1 do
         if Hmm.a hmm i j <> 0. then incr count
       done
     done;
     !count)
    (Psm_hmm.Sparse.nnz csr)

(* ---------- kernel cost model ---------- *)

module Kernel_cost = Psm_hmm.Kernel_cost

let test_kernel_cost_crossovers () =
  (* The measured winners from bench/probe.ml on the bundled IPs (m, nnz
     of the trained models; see DESIGN.md §13). *)
  check_bool "forward Camellia shape -> sparse" true
    (Kernel_cost.forward ~m:12 ~nnz:60 () = `Sparse);
  check_bool "viterbi Camellia shape -> sparse" true
    (Kernel_cost.viterbi ~steps:120_000 ~m:12 ~nnz:60 () = `Sparse);
  check_bool "viterbi AES shape (tiny, half dense) -> dense" true
    (Kernel_cost.viterbi ~steps:120_000 ~m:4 ~nnz:8 () = `Dense);
  check_bool "multi_sim Camellia shape -> indexed" true
    (Kernel_cost.multi_sim ~steps:120_000 ~m:12 ~nnz:60 () = `Indexed);
  (* Fully dense matrices: the sparse detour only adds indirection. *)
  check_bool "forward full-dense -> dense" true
    (Kernel_cost.forward ~m:4 ~nnz:16 () = `Dense);
  check_bool "viterbi full-dense -> dense" true
    (Kernel_cost.viterbi ~m:4 ~nnz:16 () = `Dense);
  (* Asymptotics: a large sparse chain picks sparse for everything. *)
  check_bool "forward large chain -> sparse" true
    (Kernel_cost.forward ~m:1000 ~nnz:3000 () = `Sparse);
  check_bool "viterbi large chain -> sparse" true
    (Kernel_cost.viterbi ~m:1000 ~nnz:3000 () = `Sparse);
  check_bool "multi_sim large chain -> indexed" true
    (Kernel_cost.multi_sim ~m:1000 ~nnz:3000 () = `Indexed)

let test_kernel_pref_roundtrip () =
  let values = [ 0; 0; 1; 1; 2; 2; 0; 0; 1; 1; 2; 2 ] in
  let _, _, _, psm = train values (List.map (fun v -> 10. ** float_of_int v) values) in
  let hmm = Hmm.build psm in
  check_bool "default pref auto" true (Hmm.kernel_pref hmm = `Auto);
  Hmm.set_kernel hmm `Dense;
  check_bool "forced pref sticks" true (Hmm.kernel_pref hmm = `Dense);
  Hmm.set_kernel hmm `Auto;
  check_bool "pref restored" true (Hmm.kernel_pref hmm = `Auto)

let test_viterbi_adversarial_ties () =
  (* All-uniform rows make every predecessor score tie at every step:
     the sparse top-K selection must reproduce the dense scan's
     lowest-index winners exactly, path element by path element. *)
  let values = [ 0; 0; 1; 1; 2; 2; 3; 3; 0; 0; 1; 1; 2; 2; 3; 3 ] in
  let _, _, _, psm = train values (List.map (fun v -> float_of_int (v + 1)) values) in
  let hmm = Hmm.build psm in
  let m = Hmm.state_count hmm in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      Hmm.unsafe_set_a hmm ~row:i ~col:j (1. /. float_of_int m)
    done
  done;
  (* Uninformative observations keep the scores tied throughout. *)
  let obs = Array.make 200 None in
  let dense = Psm_hmm.Offline.viterbi ~kernel:`Dense hmm obs in
  let sparse = Psm_hmm.Offline.viterbi ~kernel:`Sparse hmm obs in
  check_bool "tied lattice: sparse = dense" true (dense = sparse);
  (* Same check on a sparse-with-ties lattice: uniform over a chain. *)
  Hmm.reset_bans hmm;
  let obs2 = Array.init 200 (fun t -> if t mod 3 = 0 then None else Some 0) in
  check_bool "chain with tied emissions: sparse = dense" true
    (Psm_hmm.Offline.viterbi ~kernel:`Dense hmm obs2
    = Psm_hmm.Offline.viterbi ~kernel:`Sparse hmm obs2)

(* ---------- properties ---------- *)

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:50 ~name arb f)

let arb_values = QCheck.(list_of_size Gen.(int_range 4 60) (int_bound 4))

let properties =
  [ prop "training replay stays mostly synchronized" arb_values (fun values ->
        QCheck.assume (List.length values >= 4);
        let powers = List.map (fun v -> float_of_int ((v * 2) + 1)) values in
        let _, trace, delta, psm = train values powers in
        let hmm = Hmm.build psm in
        let result = Multi_sim.simulate hmm trace in
        let report = Accuracy.of_result ~reference:delta result in
        (* Even on its own training trace the simulator can mispredict:
           join deliberately produces states with identical assertions,
           and a wrong non-deterministic choice only surfaces a few
           instants later — this is precisely the paper's WSP phenomenon.
           The guarantees that DO hold: the machine stays synchronized on
           at least half the instants (resynchronization works) and the
           estimate remains sane. *)
        result.Multi_sim.wsp <= 0.5 && Float.is_finite report.Accuracy.mre);
    prop "belief stays normalized through prediction" arb_values (fun values ->
        QCheck.assume (List.length values >= 2);
        let powers = List.map (fun v -> float_of_int (v + 1)) values in
        let _, _, _, psm = train values powers in
        let hmm = Hmm.build psm in
        let b = ref (Hmm.initial_belief hmm) in
        let ok = ref true in
        for _ = 1 to 10 do
          b := Hmm.predict hmm !b;
          let total = Array.fold_left ( +. ) 0. !b in
          if abs_float (total -. 1.) > 1e-6 then ok := false
        done;
        !ok);
    prop "wsp bounded" arb_values (fun values ->
        QCheck.assume (List.length values >= 4);
        let powers = List.map (fun v -> float_of_int (v + 1)) values in
        let table, _, _, psm = train values powers in
        let hmm = Hmm.build psm in
        (* Evaluate on a shuffled variant (same alphabet, new order). *)
        let shuffled = List.rev values in
        let result = Multi_sim.simulate hmm (trace_of table shuffled) in
        result.Multi_sim.wsp >= 0. && result.Multi_sim.wsp <= 1.);
    (* ---------- sparse vs dense kernel equivalence ---------- *)
    prop "sparse forward ≡ dense forward" arb_values (fun values ->
        QCheck.assume (List.length values >= 4);
        let powers = List.map (fun v -> float_of_int ((v * 3) + 1)) values in
        let _, trace, _, psm = train values powers in
        let hmm = Hmm.build psm in
        let obs =
          Array.init (FT.length trace) (fun time ->
              (* A few Nones exercise the uninformative-emission path. *)
              if time mod 5 = 4 then None
              else Table.classify (Psm.prop_table psm) (FT.sample trace ~time))
        in
        let dense = Psm_hmm.Filtering.create ~kernel:`Dense hmm in
        let sparse = Psm_hmm.Filtering.create ~kernel:`Sparse hmm in
        let rel_close a b =
          a = b
          || abs_float (a -. b)
             <= 1e-12 *. Float.max 1. (Float.max (abs_float a) (abs_float b))
        in
        let pd = Psm_hmm.Filtering.posteriors dense obs in
        let ps = Psm_hmm.Filtering.posteriors sparse obs in
        let posteriors_ok =
          Array.for_all2 (fun rd rs -> Array.for_all2 rel_close rd rs) pd ps
        in
        posteriors_ok
        && rel_close
             (Psm_hmm.Filtering.log_likelihood dense obs)
             (Psm_hmm.Filtering.log_likelihood sparse obs));
    prop "sparse viterbi ≡ dense viterbi" arb_values (fun values ->
        QCheck.assume (List.length values >= 4);
        let powers = List.map (fun v -> float_of_int ((v * 2) + 1)) values in
        let _, trace, _, psm = train values powers in
        let hmm = Hmm.build psm in
        let obs =
          Array.init (FT.length trace) (fun time ->
              if time mod 7 = 6 then None
              else Table.classify (Psm.prop_table psm) (FT.sample trace ~time))
        in
        let dense = Psm_hmm.Offline.viterbi ~kernel:`Dense hmm obs in
        let sparse = Psm_hmm.Offline.viterbi ~kernel:`Sparse hmm obs in
        dense = sparse);
    prop "indexed multi-sim ≡ reference multi-sim" arb_values (fun values ->
        QCheck.assume (List.length values >= 4);
        let powers = List.map (fun v -> float_of_int (v + 1)) values in
        let table, trace, _, psm = train values powers in
        let hmm = Hmm.build psm in
        (* Both the clean replay and a shuffled trace (exercising the
           resynchronization, ban and fallback-jump paths). *)
        let same tr =
          let fast = Multi_sim.simulate hmm tr in
          let ref_ = Multi_sim.simulate ~reference:true hmm tr in
          fast.Multi_sim.estimate = ref_.Multi_sim.estimate
          && fast.Multi_sim.state_trace = ref_.Multi_sim.state_trace
          && fast.Multi_sim.wrong_instants = ref_.Multi_sim.wrong_instants
          && fast.Multi_sim.resync_events = ref_.Multi_sim.resync_events
        in
        same trace && same (trace_of table (List.rev values))) ]

let suite =
  ( "hmm",
    [ Alcotest.test_case "A rows stochastic" `Quick test_hmm_rows_stochastic;
      Alcotest.test_case "pi from initials" `Quick test_hmm_pi_from_initials;
      Alcotest.test_case "B entry emission" `Quick test_hmm_b_entry;
      Alcotest.test_case "predict normalized" `Quick test_hmm_predict_normalized;
      Alcotest.test_case "ban and reset" `Quick test_hmm_ban_and_reset;
      Alcotest.test_case "kernel selection" `Quick test_kernel_selection;
      Alcotest.test_case "kernel cost crossovers" `Quick test_kernel_cost_crossovers;
      Alcotest.test_case "kernel pref roundtrip" `Quick test_kernel_pref_roundtrip;
      Alcotest.test_case "viterbi adversarial ties" `Quick test_viterbi_adversarial_ties;
      Alcotest.test_case "transition count weighting" `Quick test_hmm_transition_counts_weighting;
      Alcotest.test_case "replay training" `Quick test_multi_sim_replays_training;
      Alcotest.test_case "cascade states" `Quick test_multi_sim_cascade_states;
      Alcotest.test_case "resync recovers" `Quick test_multi_sim_resync_recovers;
      Alcotest.test_case "resync ablation" `Quick test_multi_sim_resync_ablation;
      Alcotest.test_case "non-negative estimates" `Quick test_multi_sim_never_estimates_negative;
      Alcotest.test_case "stepper matches batch" `Quick test_stepper_incremental_matches_batch;
      Alcotest.test_case "filtering normalized" `Quick test_filtering_posteriors_normalized;
      Alcotest.test_case "filtering tracks truth" `Quick test_filtering_map_matches_truth_on_clean_chain;
      Alcotest.test_case "likelihood diagnostic" `Quick test_filtering_likelihood_ranks_workloads;
      Alcotest.test_case "viterbi clean replay" `Quick test_viterbi_matches_online_on_clean_replay;
      Alcotest.test_case "viterbi known lattice" `Quick test_viterbi_known_lattice;
      Alcotest.test_case "viterbi unknown obs" `Quick test_viterbi_handles_unknown_observations;
      Alcotest.test_case "accuracy zero" `Quick test_accuracy_zero_error;
      Alcotest.test_case "accuracy known" `Quick test_accuracy_known_error;
      Alcotest.test_case "accuracy validates" `Quick test_accuracy_validates_lengths ]
    @ properties )
