(* Tests for the Psm_obs observability subsystem: span nesting and
   balance, deterministic merge of per-domain buffers, the
   disabled-sink-is-free guarantee, and Chrome trace-event export. *)

module Obs = Psm_obs
module J = Json_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Every test runs with a clean sink and leaves it disabled: the sink is
   global state shared with every other suite in this binary. *)
let with_recording f =
  Obs.enable ();
  Obs.reset ();
  Fun.protect f ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())

let event_names summary =
  List.map (fun (e : Obs.span_event) -> e.Obs.span_name) summary.Obs.events

(* ---------- spans ---------- *)

let test_span_returns_value () =
  Obs.disable ();
  check_int "disabled" 42 (Obs.span "t" (fun () -> 42));
  with_recording @@ fun () -> check_int "enabled" 42 (Obs.span "t" (fun () -> 42))

let test_span_nesting_depth () =
  with_recording @@ fun () ->
  Obs.span "outer" (fun () ->
      Obs.span "inner" (fun () -> Obs.span "leaf" (fun () -> ())));
  Obs.span "sibling" (fun () -> ());
  let summary = Obs.snapshot () in
  check_int "four events" 4 (List.length summary.Obs.events);
  let depth name =
    let e =
      List.find (fun (e : Obs.span_event) -> e.Obs.span_name = name) summary.Obs.events
    in
    e.Obs.depth
  in
  check_int "outer at depth 0" 0 (depth "outer");
  check_int "inner at depth 1" 1 (depth "inner");
  check_int "leaf at depth 2" 2 (depth "leaf");
  check_int "sibling back at depth 0" 0 (depth "sibling")

let test_span_balance_and_containment () =
  with_recording @@ fun () ->
  Obs.span "outer" (fun () ->
      Obs.span "inner" (fun () -> ignore (Sys.opaque_identity (ref 0))));
  let summary = Obs.snapshot () in
  let find name =
    List.find (fun (e : Obs.span_event) -> e.Obs.span_name = name) summary.Obs.events
  in
  let outer = find "outer" and inner = find "inner" in
  check_bool "durations non-negative" true
    (outer.Obs.dur_us >= 0. && inner.Obs.dur_us >= 0.);
  check_bool "inner starts within outer" true (inner.Obs.start_us >= outer.Obs.start_us);
  check_bool "inner ends within outer" true
    (inner.Obs.start_us +. inner.Obs.dur_us
    <= outer.Obs.start_us +. outer.Obs.dur_us +. 1e-6)

let test_span_closes_on_exception () =
  with_recording @@ fun () ->
  (try Obs.span "failing" (fun () -> failwith "boom") with Failure _ -> ());
  let summary = Obs.snapshot () in
  check_int "span recorded despite raise" 1 (List.length summary.Obs.events);
  (* Depth must be rebalanced: a follow-up span sits at depth 0 again. *)
  Obs.span "after" (fun () -> ());
  let summary = Obs.snapshot () in
  let after =
    List.find
      (fun (e : Obs.span_event) -> e.Obs.span_name = "after")
      summary.Obs.events
  in
  check_int "depth rebalanced after raise" 0 after.Obs.depth

let test_counters_and_histograms () =
  with_recording @@ fun () ->
  Obs.count "c" 3;
  Obs.incr "c";
  Obs.observe "h" 2.;
  Obs.observe "h" 4.;
  let summary = Obs.snapshot () in
  Alcotest.(check (float 1e-9)) "counter sums" 4.
    (List.assoc "c" summary.Obs.counters);
  let h = List.assoc "h" summary.Obs.histograms in
  check_int "histogram n" 2 h.Obs.n;
  Alcotest.(check (float 1e-9)) "histogram mean" 3. h.Obs.mean;
  Alcotest.(check (float 1e-9)) "histogram min" 2. h.Obs.min;
  Alcotest.(check (float 1e-9)) "histogram max" 4. h.Obs.max

let test_reset_clears () =
  with_recording @@ fun () ->
  Obs.span "s" (fun () -> ());
  Obs.count "c" 1;
  Obs.reset ();
  let summary = Obs.snapshot () in
  check_int "no events" 0 (List.length summary.Obs.events);
  check_int "no counters" 0 (List.length summary.Obs.counters)

let test_span_totals () =
  with_recording @@ fun () ->
  Obs.span "a" (fun () -> ());
  Obs.span "a" (fun () -> ());
  Obs.span "b" (fun () -> ());
  let totals = Obs.span_totals () in
  check_int "two names" 2 (List.length totals);
  Alcotest.(check (list string)) "sorted by name" [ "a"; "b" ] (List.map fst totals);
  check_bool "a total >= 0" true (Obs.span_total "a" >= 0.);
  Alcotest.(check (float 0.)) "unknown name is 0" 0. (Obs.span_total "nope");
  let summary = Obs.snapshot () in
  let stat = List.assoc "a" summary.Obs.span_stats in
  check_int "a called twice" 2 stat.Obs.calls

(* ---------- deterministic merge across domains ---------- *)

(* The same fan-out recorded at PSM_JOBS=1 and PSM_JOBS=4 must merge to
   the same canonical summary (modulo wall-clock values): same counters,
   same per-name call counts, same event multiset. *)
let test_deterministic_merge_across_jobs () =
  let items = List.init 32 Fun.id in
  let record () =
    Obs.reset ();
    let results =
      Psm_par.parallel_map
        (fun i ->
          Obs.span "work.item" (fun () ->
              Obs.count "work.total" i;
              Obs.observe "work.size" (float_of_int i);
              i * i))
        items
    in
    (results, Obs.snapshot ())
  in
  with_recording @@ fun () ->
  let saved = Psm_par.default_jobs () in
  Fun.protect ~finally:(fun () -> Psm_par.set_jobs saved) @@ fun () ->
  Psm_par.set_jobs 1;
  let seq_results, seq = record () in
  Psm_par.set_jobs 4;
  let par_results, par = record () in
  Alcotest.(check (list int)) "results identical" seq_results par_results;
  Alcotest.(check (list (pair string (float 1e-9)))) "counters identical"
    seq.Obs.counters par.Obs.counters;
  check_int "same number of events" (List.length seq.Obs.events)
    (List.length par.Obs.events);
  Alcotest.(check (list string)) "same event names in canonical order"
    (event_names seq) (event_names par);
  let calls (s : Obs.summary) =
    List.map (fun (name, (st : Obs.span_stat)) -> (name, st.Obs.calls)) s.Obs.span_stats
  in
  Alcotest.(check (list (pair string int))) "same call counts" (calls seq) (calls par);
  let hist (s : Obs.summary) =
    List.map
      (fun (name, (h : Obs.hist_stat)) -> (name, (h.Obs.n, h.Obs.mean)))
      s.Obs.histograms
  in
  Alcotest.(check (list (pair string (pair int (float 1e-9)))))
    "same histograms" (hist seq) (hist par);
  (* Canonical event order: non-decreasing start times. *)
  let rec monotone = function
    | (a : Obs.span_event) :: (b :: _ as rest) ->
        a.Obs.start_us <= b.Obs.start_us && monotone rest
    | _ -> true
  in
  check_bool "events sorted by start time" true (monotone par.Obs.events)

(* ---------- the disabled sink is free ---------- *)

(* Instrumented computations must be bit-identical with the sink disabled
   and with it enabled: recording may cost time but never perturbs
   results. (The disabled path is the default for every run, so this is
   the "uninstrumented-equivalent" guarantee.) *)
let qcheck_disabled_sink_bit_identical =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"sink state never changes results"
       QCheck.(pair (list_of_size Gen.(int_range 1 40) (int_bound 1000)) small_int)
       (fun (values, salt) ->
         let compute () =
           Obs.span "q.outer" (fun () ->
               let total =
                 List.fold_left
                   (fun acc v ->
                     Obs.incr "q.iterations";
                     Obs.span "q.step" (fun () ->
                         acc +. (float_of_int v *. 1.25) +. float_of_int salt))
                   0. values
               in
               Obs.observe "q.total" total;
               total)
         in
         Obs.disable ();
         Obs.reset ();
         let disabled = compute () in
         Obs.enable ();
         let enabled =
           Fun.protect compute ~finally:(fun () ->
               Obs.disable ();
               Obs.reset ())
         in
         (* Bit-identical, not approximately equal. *)
         Int64.equal (Int64.bits_of_float disabled) (Int64.bits_of_float enabled)))

let test_disabled_sink_records_nothing () =
  Obs.disable ();
  Obs.reset ();
  ignore (Obs.span "ghost" (fun () -> Obs.count "ghost.counter" 7));
  let summary = Obs.snapshot () in
  check_int "no events" 0 (List.length summary.Obs.events);
  check_int "no counters" 0 (List.length summary.Obs.counters)

(* ---------- Chrome trace-event export ---------- *)

let test_chrome_trace_schema () =
  with_recording @@ fun () ->
  Obs.span "phase.a" (fun () -> Obs.span "phase.a.inner" (fun () -> ()));
  Obs.span "phase.b" (fun () -> ());
  Obs.count "things" 3;
  let parsed = J.of_string (Obs.to_chrome (Obs.snapshot ())) in
  let events = J.to_list (J.member "traceEvents" parsed) in
  check_bool "has events" true (events <> []);
  List.iter
    (fun e ->
      let ph = J.to_string (J.member "ph" e) in
      ignore (J.to_string (J.member "name" e));
      ignore (J.to_int (J.member "pid" e));
      ignore (J.to_int (J.member "tid" e));
      match ph with
      | "X" ->
          check_bool "ts >= 0" true (J.to_float (J.member "ts" e) >= 0.);
          check_bool "dur >= 0" true (J.to_float (J.member "dur" e) >= 0.)
      | "M" ->
          Alcotest.(check string) "metadata is thread_name" "thread_name"
            (J.to_string (J.member "name" e));
          ignore (J.to_string (J.member "name" (J.member "args" e)))
      | "C" -> check_bool "counter has args" true (J.mem_opt "args" e <> None)
      | other -> Alcotest.failf "unexpected phase %S" other)
    events;
  let xs =
    List.filter (fun e -> J.to_string (J.member "ph" e) = "X") events
  in
  check_int "one X event per span" 3 (List.length xs);
  (* ts is rebased: the earliest complete event starts at 0. *)
  let min_ts =
    List.fold_left (fun acc e -> Float.min acc (J.to_float (J.member "ts" e))) infinity xs
  in
  Alcotest.(check (float 1e-9)) "rebased to zero" 0. min_ts;
  let cs = List.filter (fun e -> J.to_string (J.member "ph" e) = "C") events in
  check_int "one counter event" 1 (List.length cs)

let test_chrome_file_and_json_file () =
  with_recording @@ fun () ->
  Obs.span "file.span" (fun () -> ());
  let chrome = Filename.temp_file "obs" ".chrome.json" in
  let plain = Filename.temp_file "obs" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove chrome;
      Sys.remove plain)
    (fun () ->
      Obs.write_chrome_file chrome;
      Obs.write_json_file plain;
      let c = J.of_file chrome in
      check_bool "chrome parses" true (J.to_list (J.member "traceEvents" c) <> []);
      let p = J.of_file plain in
      check_bool "json has spans" true (J.mem_opt "spans" p <> None))

let test_text_summary_mentions_spans () =
  with_recording @@ fun () ->
  Obs.span "visible.name" (fun () -> ());
  Obs.count "visible.counter" 2;
  let text = Obs.to_text (Obs.snapshot ()) in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
    scan 0
  in
  check_bool "span name shown" true (contains text "visible.name");
  check_bool "counter shown" true (contains text "visible.counter")

let suite =
  ( "obs",
    [ Alcotest.test_case "span returns value" `Quick test_span_returns_value;
      Alcotest.test_case "nesting depth" `Quick test_span_nesting_depth;
      Alcotest.test_case "balance and containment" `Quick
        test_span_balance_and_containment;
      Alcotest.test_case "closes on exception" `Quick test_span_closes_on_exception;
      Alcotest.test_case "counters and histograms" `Quick test_counters_and_histograms;
      Alcotest.test_case "reset clears" `Quick test_reset_clears;
      Alcotest.test_case "span totals" `Quick test_span_totals;
      Alcotest.test_case "deterministic merge across jobs" `Quick
        test_deterministic_merge_across_jobs;
      qcheck_disabled_sink_bit_identical;
      Alcotest.test_case "disabled sink records nothing" `Quick
        test_disabled_sink_records_nothing;
      Alcotest.test_case "chrome trace schema" `Quick test_chrome_trace_schema;
      Alcotest.test_case "chrome + json files" `Quick test_chrome_file_and_json_file;
      Alcotest.test_case "text summary" `Quick test_text_summary_mentions_spans ] )
