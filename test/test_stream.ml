(* Streaming-trainer equivalence: Stream_train consumes cycles one at a
   time with watermark compaction, yet must produce the same optimized
   PSM, the same HMM inputs and the same regression decisions as the
   batch Flow.train — structure exactly, float attributes within a
   1e-9 relative tolerance (the two paths run the same Chan-merge
   arithmetic, so in practice they agree bit-for-bit; the slack only
   covers the sufficient-statistics forms of Pearson/fit). *)

module Flow = Psm_flow.Flow
module Stream = Psm_flow.Stream_train
module Workloads = Psm_ips.Workloads
module Capture = Psm_ips.Capture
module Psm = Psm_core.Psm
module Assertion = Psm_core.Assertion
module Power_attr = Psm_core.Power_attr
module Optimize = Psm_core.Optimize
module Functional_trace = Psm_trace.Functional_trace
module Power_trace = Psm_trace.Power_trace
module Interface = Psm_trace.Interface
module Signal = Psm_trace.Signal
module Bits = Psm_bits.Bits
module Miner = Psm_mining.Miner
module J = Json_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let tolerance = 1e-9

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let close label expected actual =
  let bound = tolerance *. Float.max 1e-30 (abs_float expected) in
  if abs_float (expected -. actual) > bound then
    Alcotest.failf "%s: batch %.17g, streamed %.17g" label expected actual

let sorted_states psm =
  List.sort (fun (a : Psm.state) b -> compare a.Psm.id b.Psm.id) (Psm.states psm)

let check_attr label (a : Power_attr.t) (b : Power_attr.t) =
  close (label ^ " mu") a.Power_attr.mu b.Power_attr.mu;
  close (label ^ " sigma") a.Power_attr.sigma b.Power_attr.sigma;
  check_int (label ^ " n") a.Power_attr.n b.Power_attr.n;
  Alcotest.(check (list (triple int int int)))
    (label ^ " intervals")
    (List.map (fun iv -> (iv.Power_attr.trace, iv.Power_attr.start, iv.Power_attr.stop))
       a.Power_attr.intervals)
    (List.map (fun iv -> (iv.Power_attr.trace, iv.Power_attr.start, iv.Power_attr.stop))
       b.Power_attr.intervals)

let check_counts label a b =
  check_int (label ^ " entries") (List.length a) (List.length b);
  List.iter2
    (fun ((ka : int * int), va) ((kb : int * int), vb) ->
      Alcotest.(check (pair int int)) (label ^ " key") ka kb;
      close (label ^ " value") va vb)
    a b

(* Structure exactly, floats within tolerance. *)
let check_equiv name (batch : Flow.trained) (sr : Stream.result) =
  let bp = batch.Flow.optimized and sp = sr.Stream.optimized in
  check_int (name ^ " props") (Psm_mining.Prop_trace.Table.prop_count batch.Flow.table)
    (Psm_mining.Prop_trace.Table.prop_count sr.Stream.table);
  check_int (name ^ " states") (Psm.state_count bp) (Psm.state_count sp);
  check_int (name ^ " transitions") (Psm.transition_count bp) (Psm.transition_count sp);
  check_int (name ^ " machines") (Psm.machine_count bp) (Psm.machine_count sp);
  Alcotest.(check (list int)) (name ^ " initial") (Psm.initial bp) (Psm.initial sp);
  Alcotest.(check (list (triple int int int)))
    (name ^ " transition set")
    (List.sort compare
       (List.map (fun (t : Psm.transition) -> (t.Psm.src, t.Psm.guard, t.Psm.dst))
          (Psm.transitions bp)))
    (List.sort compare
       (List.map (fun (t : Psm.transition) -> (t.Psm.src, t.Psm.guard, t.Psm.dst))
          (Psm.transitions sp)));
  List.iter2
    (fun (a : Psm.state) (b : Psm.state) ->
      let label = Printf.sprintf "%s state %d" name a.Psm.id in
      check_int (label ^ " id") a.Psm.id b.Psm.id;
      check_bool (label ^ " assertion") true
        (Assertion.equal a.Psm.assertion b.Psm.assertion);
      check_attr label a.Psm.attr b.Psm.attr;
      (match (a.Psm.output, b.Psm.output) with
      | Psm.Const x, Psm.Const y -> close (label ^ " const") x y
      | Psm.Affine fa, Psm.Affine fb ->
          close (label ^ " slope") fa.slope fb.slope;
          close (label ^ " intercept") fa.intercept fb.intercept
      | _ -> Alcotest.failf "%s: output kinds differ" label);
      check_int (label ^ " components") (List.length a.Psm.components)
        (List.length b.Psm.components);
      List.iter2
        (fun (aa, aattr) (ba, battr) ->
          check_bool (label ^ " component assertion") true (Assertion.equal aa ba);
          check_attr (label ^ " component") aattr battr)
        a.Psm.components b.Psm.components)
    (sorted_states bp) (sorted_states sp);
  check_counts (name ^ " transition counts") batch.Flow.transition_counts
    sr.Stream.transition_counts;
  check_counts (name ^ " emission counts") batch.Flow.emission_counts
    sr.Stream.emission_counts;
  check_int (name ^ " reports")
    (List.length batch.Flow.optimize_reports)
    (List.length sr.Stream.optimize_reports);
  List.iter2
    (fun (a : Optimize.report) (b : Optimize.report) ->
      check_int (name ^ " report state") a.Optimize.state_id b.Optimize.state_id;
      check_bool (name ^ " report upgraded") a.Optimize.upgraded b.Optimize.upgraded;
      close (name ^ " report sigma") a.Optimize.relative_sigma b.Optimize.relative_sigma;
      close (name ^ " report r") a.Optimize.correlation b.Optimize.correlation)
    batch.Flow.optimize_reports sr.Stream.optimize_reports;
  (* Beyond structural identity: the two models are power-label-aware
     bisimilar, i.e. semantically indistinguishable (Verify.equiv). *)
  let er = Psm_verify.Verify.equiv ~epsilon:1e-6 bp sp in
  (match er.Psm_verify.Verify.mismatch with
  | None -> ()
  | Some m -> Alcotest.failf "%s bisimulation: %s" name m);
  check_bool (name ^ " bisimilar") true er.Psm_verify.Verify.equivalent

let capture_suite ?(parts = 3) ?(total_length = 4500) name make =
  let ip = make () in
  let suite = Workloads.suite ~parts ~total_length ~long:false name in
  List.split (List.map (fun stimulus -> Capture.run ip stimulus) suite)

(* ---------- bundled-IP equivalence ---------- *)

let ip_case ?watermark name make () =
  let traces, powers = capture_suite name make in
  let batch = Flow.train ~traces ~powers () in
  let streamed = Stream.train_traces ?watermark ~traces ~powers () in
  check_bool (name ^ " cycles counted") true
    (streamed.Stream.cycles = List.fold_left (fun a t -> a + Functional_trace.length t) 0 traces);
  check_equiv name batch streamed

(* A small watermark on one IP forces many compactions mid-trace; the
   default watermark on the others exercises the single-flush path. *)
let test_ram () = ip_case ~watermark:256 "RAM" Psm_ips.Ram.create ()
let test_multsum () = ip_case "MultSum" Psm_ips.Multsum.create ()
let test_aes () = ip_case "AES" Psm_ips.Aes.create ()
let test_camellia () = ip_case ~watermark:1000 "Camellia" Psm_ips.Camellia.create ()

(* ---------- random-trace property ---------- *)

(* Piecewise-constant signals with random dwell times: long enough runs
   for the stability filter to mine a real vocabulary, workload-like
   enough to exercise simplify/join merging in depth. *)
let random_interface =
  Interface.create
    [ Signal.input "mode" 2; Signal.input "req" 1; Signal.output "busy" 1 ]

let random_trace seed len =
  let st = Random.State.make [| seed; len |] in
  let samples =
    Array.init len (fun _ -> [| Bits.zero 2; Bits.zero 1; Bits.zero 1 |])
  in
  let powers = Array.make len 0. in
  let t = ref 0 in
  while !t < len do
    let mode = Random.State.int st 4 in
    let req = Random.State.int st 2 in
    let busy = if mode >= 2 then 1 else req in
    let dwell = 1 + Random.State.int st 9 in
    let level = float_of_int ((mode * 7) + (busy * 3) + 2) in
    let stop = min (len - 1) (!t + dwell - 1) in
    for i = !t to stop do
      samples.(i) <-
        [| Bits.of_int ~width:2 mode;
           Bits.of_int ~width:1 req;
           Bits.of_int ~width:1 busy |];
      powers.(i) <- level +. (0.25 *. float_of_int (Random.State.int st 5))
    done;
    t := stop + 1
  done;
  (Functional_trace.of_samples random_interface samples, Power_trace.of_array powers)

let gen_pair =
  QCheck.Gen.(
    let* n_traces = 1 -- 3 in
    let* seeds = list_repeat n_traces (0 -- 1_000_000) in
    let* lens = list_repeat n_traces (40 -- 220) in
    return (List.map2 random_trace seeds lens))

let test_random_equiv =
  QCheck.Test.make ~count:40 ~name:"train_stream = train on random traces"
    (QCheck.make gen_pair) (fun pairs ->
      let traces, powers = List.split pairs in
      let batch = Flow.train ~traces ~powers () in
      let streamed = Stream.train_traces ~watermark:32 ~traces ~powers () in
      check_equiv "random" batch streamed;
      true)

(* ---------- incremental miner ---------- *)

let test_incremental_miner () =
  let traces, _ = capture_suite ~total_length:3000 "RAM" Psm_ips.Ram.create in
  let batch_vocab = Miner.mine_vocabulary traces in
  let inc = Miner.Incremental.create (Functional_trace.interface (List.hd traces)) in
  List.iter
    (fun trace ->
      Functional_trace.iter (fun _ s -> Miner.Incremental.observe inc s) trace;
      Miner.Incremental.end_trace inc)
    traces;
  let stream_vocab = Miner.Incremental.vocabulary inc in
  let atoms v = Array.to_list (Psm_mining.Vocabulary.atoms v) in
  check_int "atom count"
    (List.length (atoms batch_vocab))
    (List.length (atoms stream_vocab));
  List.iter2
    (fun a b -> check_bool "atom" true (Psm_mining.Atomic.equal a b))
    (atoms batch_vocab) (atoms stream_vocab)

(* ---------- provenance modes ---------- *)

let test_counts_provenance () =
  let traces, powers = capture_suite ~total_length:3000 "MultSum" Psm_ips.Multsum.create in
  let full = Stream.train_traces ~watermark:512 ~traces ~powers () in
  let light =
    Stream.train_traces ~watermark:512 ~provenance:`Counts ~traces ~powers ()
  in
  let fp = full.Stream.optimized and lp = light.Stream.optimized in
  check_int "states" (Psm.state_count fp) (Psm.state_count lp);
  check_int "transitions" (Psm.transition_count fp) (Psm.transition_count lp);
  Alcotest.(check (list int)) "initial" (Psm.initial fp) (Psm.initial lp);
  List.iter2
    (fun (a : Psm.state) (b : Psm.state) ->
      check_bool "assertion" true (Assertion.equal a.Psm.assertion b.Psm.assertion);
      close "mu" a.Psm.attr.Power_attr.mu b.Psm.attr.Power_attr.mu;
      close "sigma" a.Psm.attr.Power_attr.sigma b.Psm.attr.Power_attr.sigma;
      check_int "n" a.Psm.attr.Power_attr.n b.Psm.attr.Power_attr.n;
      check_int "no intervals retained" 0
        (List.length b.Psm.attr.Power_attr.intervals);
      check_bool "components bounded" true
        (List.length b.Psm.components <= List.length a.Psm.components))
    (sorted_states fp) (sorted_states lp);
  check_counts "transition counts" full.Stream.transition_counts
    light.Stream.transition_counts;
  check_counts "emission counts" full.Stream.emission_counts
    light.Stream.emission_counts

(* ---------- checkpoint / restore ---------- *)

let test_checkpoint_mid_trace () =
  let traces, powers = capture_suite ~total_length:3000 "MultSum" Psm_ips.Multsum.create in
  let reference = Stream.train_traces ~watermark:512 ~traces ~powers () in
  let iface = Functional_trace.interface (List.hd traces) in
  let feed_phase t =
    List.iter2
      (fun trace power ->
        for i = 0 to Functional_trace.length trace - 1 do
          Stream.Trainer.push t (Functional_trace.sample trace ~time:i)
            ~power:(Power_trace.get power i)
        done;
        Stream.Trainer.end_trace t)
      traces powers
  in
  let t = Stream.Trainer.create ~watermark:512 iface in
  feed_phase t;
  Stream.Trainer.finish_mining t;
  (* Training pass: checkpoint in the middle of the second trace, resume
     from the restored trainer and finish the pass there. *)
  let first = List.hd traces and first_p = List.hd powers in
  for i = 0 to Functional_trace.length first - 1 do
    Stream.Trainer.push t (Functional_trace.sample first ~time:i)
      ~power:(Power_trace.get first_p i)
  done;
  Stream.Trainer.end_trace t;
  let second = List.nth traces 1 and second_p = List.nth powers 1 in
  let half = Functional_trace.length second / 2 in
  for i = 0 to half - 1 do
    Stream.Trainer.push t (Functional_trace.sample second ~time:i)
      ~power:(Power_trace.get second_p i)
  done;
  let path = Filename.temp_file "psm-trainer" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Stream.Checkpoint.save_file path t;
      let t2 = Stream.Checkpoint.load_file path in
      for i = half to Functional_trace.length second - 1 do
        Stream.Trainer.push t2 (Functional_trace.sample second ~time:i)
          ~power:(Power_trace.get second_p i)
      done;
      Stream.Trainer.end_trace t2;
      List.iteri
        (fun k trace ->
          if k >= 2 then begin
            let power = List.nth powers k in
            for i = 0 to Functional_trace.length trace - 1 do
              Stream.Trainer.push t2 (Functional_trace.sample trace ~time:i)
                ~power:(Power_trace.get power i)
            done;
            Stream.Trainer.end_trace t2
          end)
        traces;
      let resumed = Stream.Trainer.finish t2 in
      check_int "resumed cycles" reference.Stream.cycles resumed.Stream.cycles;
      (* Compare the two streamed results directly: same structure,
         bit-identical floats (identical arithmetic on both sides). *)
      let bp = reference.Stream.optimized and sp = resumed.Stream.optimized in
      check_int "states" (Psm.state_count bp) (Psm.state_count sp);
      check_int "transitions" (Psm.transition_count bp) (Psm.transition_count sp);
      Alcotest.(check (list int)) "initial" (Psm.initial bp) (Psm.initial sp);
      List.iter2
        (fun (a : Psm.state) (b : Psm.state) ->
          check_bool "assertion" true (Assertion.equal a.Psm.assertion b.Psm.assertion);
          check_attr (Printf.sprintf "state %d" a.Psm.id) a.Psm.attr b.Psm.attr)
        (sorted_states bp) (sorted_states sp);
      check_counts "transition counts" reference.Stream.transition_counts
        resumed.Stream.transition_counts;
      check_counts "emission counts" reference.Stream.emission_counts
        resumed.Stream.emission_counts)

(* The same kill/resume discipline the serve-session tests use, through
   the shared harness: the only thing surviving the kill is the
   checkpoint file's bytes. Steps are half-traces, so the default and
   chosen kill points land mid-trace in the middle of the training
   pass — the hardest resume point (open trace cursor, pending watermark
   state). The revived trainer must finish on the exact result of the
   uninterrupted run. *)
let test_harness_kill_resume () =
  let traces, powers = capture_suite ~total_length:3000 "RAM" Psm_ips.Ram.create in
  let iface = Functional_trace.interface (List.hd traces) in
  let push_range t trace power lo hi =
    for i = lo to hi - 1 do
      Stream.Trainer.push t (Functional_trace.sample trace ~time:i)
        ~power:(Power_trace.get power i)
    done
  in
  let ops = ref [] in
  List.iter2
    (fun trace power ->
      ops :=
        (fun t ->
          push_range t trace power 0 (Functional_trace.length trace);
          Stream.Trainer.end_trace t)
        :: !ops)
    traces powers;
  ops := (fun t -> Stream.Trainer.finish_mining t) :: !ops;
  List.iter2
    (fun trace power ->
      let n = Functional_trace.length trace in
      ops := (fun t -> push_range t trace power 0 (n / 2)) :: !ops;
      ops :=
        (fun t ->
          push_range t trace power (n / 2) n;
          Stream.Trainer.end_trace t)
        :: !ops)
    traces powers;
  let ops = Array.of_list (List.rev !ops) in
  let subject =
    { Resume_harness.label = "stream-train";
      steps = Array.length ops;
      create = (fun () -> Stream.Trainer.create ~watermark:512 iface);
      feed =
        (fun t i ->
          ops.(i) t;
          []);
      save =
        (fun t ->
          let path = Filename.temp_file "psm-trainer" ".ckpt" in
          Fun.protect
            ~finally:(fun () -> Sys.remove path)
            (fun () ->
              Stream.Checkpoint.save_file path t;
              let ic = open_in_bin path in
              Fun.protect
                ~finally:(fun () -> close_in ic)
                (fun () -> really_input_string ic (in_channel_length ic))));
      restore =
        (fun bytes ->
          let path = Filename.temp_file "psm-trainer" ".ckpt" in
          Fun.protect
            ~finally:(fun () -> Sys.remove path)
            (fun () ->
              let oc = open_out_bin path in
              output_string oc bytes;
              close_out oc;
              Stream.Checkpoint.load_file path));
      finish = (fun t -> Stream.Trainer.finish t) }
  in
  let compare_results (a : Stream.result) (b : Stream.result) =
    check_int "cycles" a.Stream.cycles b.Stream.cycles;
    let bp = a.Stream.optimized and sp = b.Stream.optimized in
    check_int "states" (Psm.state_count bp) (Psm.state_count sp);
    check_int "transitions" (Psm.transition_count bp) (Psm.transition_count sp);
    Alcotest.(check (list int)) "initial" (Psm.initial bp) (Psm.initial sp);
    List.iter2
      (fun (x : Psm.state) (y : Psm.state) ->
        check_bool "assertion" true (Assertion.equal x.Psm.assertion y.Psm.assertion);
        check_attr (Printf.sprintf "state %d" x.Psm.id) x.Psm.attr y.Psm.attr)
      (sorted_states bp) (sorted_states sp);
    check_counts "transition counts" a.Stream.transition_counts
      b.Stream.transition_counts;
    check_counts "emission counts" a.Stream.emission_counts
      b.Stream.emission_counts
  in
  (* Default kill point (halfway: inside the training pass) plus one
     inside the very first mining trace. *)
  List.iter
    (fun kill_at ->
      let (_, expected), (_, actual) = Resume_harness.run ?kill_at subject in
      compare_results expected actual)
    [ None; Some 1 ]

let test_checkpoint_bad_header () =
  let path = Filename.temp_file "psm-trainer" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "psm-repro-model 1\nnot a trainer\n";
      close_out oc;
      match Stream.Checkpoint.load_file path with
      | _ -> Alcotest.fail "expected Restore_error"
      | exception Stream.Checkpoint.Restore_error msg ->
          check_bool "names found header" true (contains msg "psm-repro-model 1");
          check_bool "names expected header" true
            (contains msg Stream.Checkpoint.version_line);
          check_bool "names source" true (contains msg path))

(* ---------- VCD streaming path ---------- *)

let test_vcd_stream_matches_batch () =
  let traces, powers = capture_suite ~total_length:3000 "RAM" Psm_ips.Ram.create in
  let dir = Filename.temp_file "psm-stream" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let paths =
    List.mapi
      (fun i (trace, power) ->
        let path = Filename.concat dir (Printf.sprintf "t%d.vcd" i) in
        Psm_trace.Vcd.write_file ~power path trace;
        path)
      (List.combine traces powers)
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove paths;
      Sys.rmdir dir)
    (fun () ->
      let batch, _ingested = Flow.train_on_vcd_files ~period:1 paths in
      let streamed = Stream.train_stream ~period:1 paths in
      check_equiv "vcd" batch streamed)

let test_vcd_checkpoint_resume () =
  let traces, powers = capture_suite ~total_length:3000 "RAM" Psm_ips.Ram.create in
  let dir = Filename.temp_file "psm-stream" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let paths =
    List.mapi
      (fun i (trace, power) ->
        let path = Filename.concat dir (Printf.sprintf "t%d.vcd" i) in
        Psm_trace.Vcd.write_file ~power path trace;
        path)
      (List.combine traces powers)
  in
  let ckpt = Filename.concat dir "trainer.ckpt" in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove paths;
      if Sys.file_exists ckpt then Sys.remove ckpt;
      Sys.rmdir dir)
    (fun () ->
      let plain = Stream.train_stream ~period:1 paths in
      (* Emulate a run interrupted after mining the first file: mine that
         file by hand, checkpoint, then hand the file list back to
         [train_stream] with the checkpoint. It must skip the mined file
         and land on the uninterrupted result. *)
      let first = List.hd traces and first_p = List.hd powers in
      let t = Stream.Trainer.create (Functional_trace.interface first) in
      for i = 0 to Functional_trace.length first - 1 do
        Stream.Trainer.push t (Functional_trace.sample first ~time:i)
          ~power:(Power_trace.get first_p i)
      done;
      Stream.Trainer.end_trace t;
      Stream.Checkpoint.save_file ckpt t;
      let resumed = Stream.train_stream ~period:1 ~checkpoint:ckpt paths in
      check_bool "checkpoint removed on completion" false (Sys.file_exists ckpt);
      check_int "cycles" plain.Stream.cycles resumed.Stream.cycles;
      let bp = plain.Stream.optimized and sp = resumed.Stream.optimized in
      check_int "states" (Psm.state_count bp) (Psm.state_count sp);
      check_int "transitions" (Psm.transition_count bp) (Psm.transition_count sp);
      Alcotest.(check (list int)) "initial" (Psm.initial bp) (Psm.initial sp);
      List.iter2
        (fun (a : Psm.state) (b : Psm.state) ->
          check_bool "assertion" true (Assertion.equal a.Psm.assertion b.Psm.assertion);
          check_attr (Printf.sprintf "state %d" a.Psm.id) a.Psm.attr b.Psm.attr)
        (sorted_states bp) (sorted_states sp);
      check_counts "transition counts" plain.Stream.transition_counts
        resumed.Stream.transition_counts;
      check_counts "emission counts" plain.Stream.emission_counts
        resumed.Stream.emission_counts)

(* ---------- golden streamed entry ---------- *)

(* Same style as test_golden: pin the streamed pipeline's numeric output
   on the fixed-seed RAM workload against a checked-in baseline.
   Regenerate with PSM_REGEN_GOLDEN=1 dune runtest. *)
let stream_golden_name = "Stream_RAM"

let golden_of_result (r : Stream.result) =
  let psm = r.Stream.optimized in
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n";
  out "  \"ip\": %S,\n" stream_golden_name;
  out "  \"cycles\": %d,\n" r.Stream.cycles;
  out "  \"compactions\": %d,\n" r.Stream.compactions;
  out "  \"machines\": %d,\n" (Psm.machine_count psm);
  out "  \"states\": %d,\n" (Psm.state_count psm);
  out "  \"transitions\": %d,\n" (Psm.transition_count psm);
  out "  \"props\": %d,\n" (Psm_mining.Prop_trace.Table.prop_count r.Stream.table);
  out "  \"attrs\": [\n";
  let states = sorted_states psm in
  List.iteri
    (fun i (s : Psm.state) ->
      out "    { \"id\": %d, \"mu\": %.17g, \"sigma\": %.17g, \"n\": %d }%s\n"
        s.Psm.id s.Psm.attr.Power_attr.mu s.Psm.attr.Power_attr.sigma
        s.Psm.attr.Power_attr.n
        (if i = List.length states - 1 then "" else ","))
    states;
  out "  ]\n}\n";
  Buffer.contents buf

let test_stream_golden () =
  let traces, powers = capture_suite "RAM" Psm_ips.Ram.create in
  let streamed = Stream.train_traces ~watermark:1024 ~traces ~powers () in
  let regen =
    match Sys.getenv_opt "PSM_REGEN_GOLDEN" with
    | Some ("" | "0") | None -> false
    | Some _ -> true
  in
  if regen then begin
    let dir =
      if Sys.file_exists "../../../dune-project" then "../../../test/golden"
      else if Sys.file_exists "dune-project" then "test/golden"
      else "golden"
    in
    let path = Filename.concat dir (stream_golden_name ^ ".json") in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (golden_of_result streamed));
    Printf.printf "regenerated %s\n" path
  end
  else begin
    let dir =
      match List.find_opt Sys.file_exists [ "golden"; "test/golden" ] with
      | Some d -> d
      | None -> Alcotest.failf "golden directory not found from %s" (Sys.getcwd ())
    in
    let path = Filename.concat dir (stream_golden_name ^ ".json") in
    if not (Sys.file_exists path) then
      Alcotest.failf "%s missing - regenerate with PSM_REGEN_GOLDEN=1 dune runtest" path;
    let g = J.of_file path in
    let psm = streamed.Stream.optimized in
    check_int "golden cycles" (J.to_int (J.member "cycles" g)) streamed.Stream.cycles;
    check_int "golden states" (J.to_int (J.member "states" g)) (Psm.state_count psm);
    check_int "golden transitions"
      (J.to_int (J.member "transitions" g))
      (Psm.transition_count psm);
    check_int "golden machines" (J.to_int (J.member "machines" g)) (Psm.machine_count psm);
    check_int "golden props"
      (J.to_int (J.member "props" g))
      (Psm_mining.Prop_trace.Table.prop_count streamed.Stream.table);
    let rows = J.to_list (J.member "attrs" g) in
    let states = sorted_states psm in
    check_int "golden attr rows" (List.length rows) (List.length states);
    List.iter2
      (fun row (s : Psm.state) ->
        check_int "golden state id" (J.to_int (J.member "id" row)) s.Psm.id;
        close "golden mu" (J.to_float (J.member "mu" row)) s.Psm.attr.Power_attr.mu;
        close "golden sigma" (J.to_float (J.member "sigma" row)) s.Psm.attr.Power_attr.sigma;
        check_int "golden n" (J.to_int (J.member "n" row)) s.Psm.attr.Power_attr.n)
      rows states
  end

let suite =
  ( "stream",
    [ Alcotest.test_case "stream = batch (RAM, watermark 256)" `Slow test_ram;
      Alcotest.test_case "stream = batch (MultSum)" `Slow test_multsum;
      Alcotest.test_case "stream = batch (AES)" `Slow test_aes;
      Alcotest.test_case "stream = batch (Camellia, watermark 1000)" `Slow test_camellia;
      QCheck_alcotest.to_alcotest test_random_equiv;
      Alcotest.test_case "incremental miner = batch miner" `Quick test_incremental_miner;
      Alcotest.test_case "counts provenance" `Slow test_counts_provenance;
      Alcotest.test_case "checkpoint/restore mid-trace" `Slow test_checkpoint_mid_trace;
      Alcotest.test_case "kill/resume harness (mid-pass)" `Slow test_harness_kill_resume;
      Alcotest.test_case "checkpoint rejects model files" `Quick test_checkpoint_bad_header;
      Alcotest.test_case "VCD streaming = batch ingestion" `Slow test_vcd_stream_matches_batch;
      Alcotest.test_case "train_stream checkpoint resume" `Slow test_vcd_checkpoint_resume;
      Alcotest.test_case "streamed golden (RAM)" `Slow test_stream_golden ] )
