(* Serve-layer tests: the multi-session estimation engine and the
   line-JSON daemon in front of it.

   The engine's contract is determinism — served (power, state) streams
   are bit-identical to offline inference regardless of client arrival
   interleaving, chunk boundaries, scheduler batching or pool width — so
   most tests here drive the same observation plans through wildly
   different schedules and demand Float.compare-equality against the
   offline evaluators. The rest is the failure envelope: malformed
   frames, out-of-vocabulary submissions, truncated VCD uploads,
   disconnects and idle eviction must each degrade exactly one request
   or one session, never the daemon. *)

module Flow = Psm_flow.Flow
module Persist = Psm_flow.Persist
module Estimate = Psm_flow.Estimate
module Workloads = Psm_ips.Workloads
module Capture = Psm_ips.Capture
module Table = Psm_mining.Prop_trace.Table
module Psm = Psm_core.Psm
module Hmm = Psm_hmm.Hmm
module Filtering = Psm_hmm.Filtering
module Multi_sim = Psm_hmm.Multi_sim
module Functional_trace = Psm_trace.Functional_trace
module Vcd = Psm_trace.Vcd
module Pool = Psm_par.Pool
module Engine = Psm_serve.Engine
module Server = Psm_serve.Server
module Protocol = Psm_serve.Protocol
module Json = Psm_serve.Json
module J = Json_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let get = function Ok v -> v | Error e -> Alcotest.fail e

(* ---------- trained models, one per IP, shared across the suite ---------- *)

let ip_makes =
  [ ("RAM", Psm_ips.Ram.create);
    ("MultSum", Psm_ips.Multsum.create);
    ("AES", Psm_ips.Aes.create);
    ("Camellia", Psm_ips.Camellia.create);
    ("FIFO", Psm_ips.Fifo.create) ]

let model_cache : (string, Persist.model) Hashtbl.t = Hashtbl.create 8

let model_of name =
  match Hashtbl.find_opt model_cache name with
  | Some m -> m
  | None ->
      let make = List.assoc name ip_makes in
      let trained =
        Flow.train_on_ip (make ())
          (Workloads.suite ~parts:3 ~total_length:3_000 ~long:false name)
      in
      let m =
        { Persist.table = trained.Flow.table;
          psm = trained.Flow.optimized;
          hmm = trained.Flow.hmm }
      in
      Hashtbl.replace model_cache name m;
      m

let nprops (m : Persist.model) = Table.prop_count m.Persist.table

(* ---------- the offline reference ---------- *)

(* Same evaluators the bench self-checks use: posterior-weighted output
   means + marginal MAP states for filter mode, the assertion-cursor
   stepper for sim mode. Served output must match bit for bit. *)
let offline_expected (model : Persist.model) (mode : Estimate.mode) obs =
  let hmm = model.Persist.hmm in
  match mode with
  | `Filter ->
      let filt = Filtering.create hmm in
      let rows = Filtering.map_states filt obs in
      let posts = Filtering.posteriors filt obs in
      let outputs =
        Array.init
          (Array.length posts.(0))
          (fun row -> (Psm.state model.Persist.psm (Hmm.state_of_row hmm row)).Psm.output)
      in
      Array.init (Array.length obs) (fun t ->
          let acc = ref 0. in
          Array.iteri
            (fun row p ->
              if p > 0. then acc := !acc +. (p *. Psm.eval_output outputs.(row) ~hamming:0.))
            posts.(t);
          (!acc, Hmm.state_of_row hmm rows.(t)))
  | `Sim ->
      let stepper = Multi_sim.Stepper.create (Hmm.copy hmm) in
      Array.map (fun o -> Multi_sim.Stepper.step_classified stepper ~hamming:0. o) obs

let check_served ~what expected actual =
  check_int (what ^ " cycles") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i (pe, se) ->
      let pa, sa = actual.(i) in
      if se <> sa || Float.compare pe pa <> 0 then
        Alcotest.failf "%s cycle %d: offline %.17g/s%d, served %.17g/s%d" what i
          pe se pa sa)
    expected

(* ---------- interleaved driving ---------- *)

type plan = {
  id : string;
  model : string;
  mode : Estimate.mode;
  obs : int option array;
}

let mk_obs ~oseed ~np ~len =
  let rng = Random.State.make [| oseed; 331 |] in
  Array.init len (fun _ ->
      if np = 0 || Random.State.int rng 8 = 0 then None
      else Some (Random.State.int rng np))

let models_for plans =
  List.sort_uniq compare (List.map (fun p -> p.model) plans)
  |> List.map (fun name -> (name, model_of name))

(* Feed every plan through one engine in a seed-chosen interleaving:
   random chunk sizes, random session order, drains injected at random
   points mid-stream. Determinism says none of this can show up in the
   outputs. *)
let drive ?pool ?(batch = true) ~seed plans =
  let engine = Engine.create ?pool ~idle_timeout:0. ~batch (models_for plans) in
  List.iter
    (fun p ->
      match Engine.open_session engine ~id:p.id ~model:p.model ~mode:p.mode with
      | Ok () -> ()
      | Error e -> Alcotest.failf "open %s: %s" p.id e)
    plans;
  let rng = Random.State.make [| seed; 229 |] in
  let cursors = Array.of_list (List.map (fun p -> (p, ref 0)) plans) in
  let remaining = ref (List.length plans) in
  while !remaining > 0 do
    let p, cur = cursors.(Random.State.int rng (Array.length cursors)) in
    let total = Array.length p.obs in
    if !cur < total then begin
      let chunk = min (1 + Random.State.int rng 7) (total - !cur) in
      let slice = Array.init chunk (fun i -> (p.obs.(!cur + i), 0.)) in
      (match Engine.submit engine ~id:p.id slice with
      | Ok n when n = chunk -> ()
      | Ok n -> Alcotest.failf "submit %s: enqueued %d of %d" p.id n chunk
      | Error e -> Alcotest.failf "submit %s: %s" p.id e);
      cur := !cur + chunk;
      if !cur = total then decr remaining
    end;
    if Random.State.int rng 3 = 0 then ignore (Engine.drain engine)
  done;
  ignore (Engine.drain engine);
  List.map
    (fun p ->
      match Engine.take_results engine ~id:p.id ~count:(Array.length p.obs) with
      | Ok r -> (p, r)
      | Error e -> Alcotest.failf "take %s: %s" p.id e)
    plans

(* ---------- property: served = offline for any interleaving ---------- *)

let gen_session_set =
  QCheck.Gen.(
    let* n = 2 -- 4 in
    let* seed = 0 -- 1_000_000 in
    let* specs =
      list_repeat n
        (triple
           (oneofl [ ("RAM", `Filter); ("RAM", `Sim); ("FIFO", `Filter); ("FIFO", `Sim) ])
           (0 -- 1_000_000) (20 -- 60))
    in
    return (seed, specs))

let test_served_equals_offline =
  QCheck.Test.make ~count:12
    ~name:"served power/state = offline (any interleaving/chunking)"
    (QCheck.make gen_session_set) (fun (seed, specs) ->
      let plans =
        List.mapi
          (fun i ((model, mode), oseed, len) ->
            { id = Printf.sprintf "q%d" i;
              model;
              mode;
              obs = mk_obs ~oseed ~np:(nprops (model_of model)) ~len })
          specs
      in
      List.iter
        (fun (p, served) ->
          check_served
            ~what:(Printf.sprintf "%s (%s)" p.id p.model)
            (offline_expected (model_of p.model) p.mode p.obs)
            served)
        (drive ~seed plans);
      true)

(* ---------- batched = loop, across pool widths ---------- *)

let test_batched_equals_loop () =
  let plans =
    List.mapi
      (fun i (model, mode) ->
        { id = Printf.sprintf "p%d" i;
          model;
          mode;
          obs = mk_obs ~oseed:(400 + i) ~np:(nprops (model_of model)) ~len:120 })
      [ ("RAM", `Filter); ("RAM", `Filter); ("RAM", `Sim);
        ("FIFO", `Filter); ("FIFO", `Sim); ("RAM", `Filter) ]
  in
  let reference =
    List.map (fun p -> offline_expected (model_of p.model) p.mode p.obs) plans
  in
  List.iter
    (fun (batch, jobs) ->
      let pool = Pool.create ~oversubscribe:true ~jobs () in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          let served = drive ~pool ~batch ~seed:((17 * jobs) + Bool.to_int batch) plans in
          List.iter2
            (fun expected (p, actual) ->
              check_served
                ~what:(Printf.sprintf "%s batch=%b jobs=%d" p.id batch jobs)
                expected actual)
            reference served))
    [ (true, 1); (true, 4); (false, 1); (false, 4) ]

(* ---------- fault injection: the engine ---------- *)

let test_engine_faults () =
  let m = model_of "RAM" in
  let np = nprops m in
  (match Engine.create [ ("RAM", m); ("RAM", m) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate model names accepted");
  let engine = Engine.create ~idle_timeout:0. [ ("RAM", m) ] in
  (match Engine.open_session engine ~id:"s" ~model:"nope" ~mode:`Filter with
  | Error e -> check_bool "unknown model named" true (contains e "nope")
  | Ok () -> Alcotest.fail "opened on unknown model");
  get (Engine.open_session engine ~id:"s" ~model:"RAM" ~mode:`Filter);
  (match Engine.open_session engine ~id:"s" ~model:"RAM" ~mode:`Sim with
  | Error e -> check_bool "duplicate session named" true (contains e "s")
  | Ok () -> Alcotest.fail "duplicate session id accepted");
  (match Engine.submit engine ~id:"ghost" [| (None, 0.) |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "submit to unknown session accepted");
  (* An out-of-vocabulary proposition rejects the whole submission
     atomically: nothing of the bad batch is enqueued... *)
  (match Engine.submit engine ~id:"s" [| (Some 0, 0.); (Some np, 0.) |] with
  | Error e -> check_bool "out of range named" true (contains e "out of range")
  | Ok _ -> Alcotest.fail "out-of-range proposition accepted");
  ignore (Engine.drain engine);
  check_int "nothing served from rejected batch" 0
    (get (Engine.available_results engine ~id:"s"));
  (* ...and the session remains fully usable, bit-identical to offline. *)
  let obs = mk_obs ~oseed:7 ~np ~len:40 in
  check_int "enqueued" 40
    (get (Engine.submit engine ~id:"s" (Array.map (fun o -> (o, 0.)) obs)));
  ignore (Engine.drain engine);
  check_served ~what:"post-fault session"
    (offline_expected m `Filter obs)
    (get (Engine.take_results engine ~id:"s" ~count:40));
  get (Engine.close_session engine ~id:"s");
  (match Engine.submit engine ~id:"s" [| (None, 0.) |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "submit to closed session accepted")

let ram_trace () =
  let trace, _ =
    Capture.run (Psm_ips.Ram.create ())
      (List.hd (Workloads.suite ~parts:1 ~total_length:600 ~long:false "RAM"))
  in
  trace

(* Feed a VCD upload in pieces, as a socket client would. *)
let feed_vcd engine ~id text ~pieces =
  let len = String.length text in
  let step = max 1 ((len + pieces - 1) / pieces) in
  let served = ref 0 in
  let pos = ref 0 in
  while !pos < len do
    let n = min step (len - !pos) in
    let last = !pos + n >= len in
    served :=
      get (Engine.vcd_chunk engine ~id ~chunk:(String.sub text !pos n) ~last);
    pos := !pos + n
  done;
  !served

let test_vcd_faults_and_equivalence () =
  let m = model_of "RAM" in
  let engine = Engine.create ~idle_timeout:0. [ ("RAM", m) ] in
  get (Engine.open_session engine ~id:"v" ~model:"RAM" ~mode:`Filter);
  get (Engine.open_session engine ~id:"o" ~model:"RAM" ~mode:`Filter);
  (* Garbage upload: per-session error, buffer reset, session intact. *)
  check_int "garbage buffered" 0
    (get (Engine.vcd_chunk engine ~id:"v" ~chunk:"this is not" ~last:false));
  (match Engine.vcd_chunk engine ~id:"v" ~chunk:" a vcd file" ~last:true with
  | Error e -> check_bool "vcd error prefixed" true (contains e "vcd")
  | Ok _ -> Alcotest.fail "garbage VCD accepted");
  let trace = ram_trace () in
  let text = Vcd.to_string trace in
  (* Truncated upload: also just an error on that session. *)
  (match
     Engine.vcd_chunk engine ~id:"v"
       ~chunk:(String.sub text 0 (String.length text / 2))
       ~last:true
   with
  | Error e -> check_bool "truncated error prefixed" true (contains e "vcd")
  | Ok _ -> Alcotest.fail "truncated VCD accepted");
  (* The same session then serves the full upload — and the VCD path is
     bit-identical to submitting the classified propositions with the
     interface's input-Hamming series. *)
  let n = Functional_trace.length trace in
  check_int "vcd cycles enqueued" n (feed_vcd engine ~id:"v" text ~pieces:5);
  let hd = Functional_trace.input_hamming_series trace in
  let classified =
    Array.init n (fun time ->
        ( Table.classify m.Persist.table (Functional_trace.sample trace ~time),
          hd.(time) ))
  in
  check_int "observe cycles enqueued" n
    (get (Engine.submit engine ~id:"o" classified));
  ignore (Engine.drain engine);
  let via_vcd = get (Engine.take_results engine ~id:"v" ~count:n) in
  let via_obs = get (Engine.take_results engine ~id:"o" ~count:n) in
  check_int "same cycle count" (Array.length via_obs) (Array.length via_vcd);
  Array.iteri
    (fun i (pe, se) ->
      let pa, sa = via_vcd.(i) in
      if se <> sa || Float.compare pe pa <> 0 then
        Alcotest.failf "vcd/observe divergence at cycle %d" i)
    via_obs

let test_idle_eviction () =
  let clock = ref 0. in
  let m = model_of "RAM" in
  let engine =
    Engine.create ~idle_timeout:10. ~now:(fun () -> !clock) [ ("RAM", m) ]
  in
  get (Engine.open_session engine ~id:"a" ~model:"RAM" ~mode:`Filter);
  get (Engine.open_session engine ~id:"b" ~model:"RAM" ~mode:`Sim);
  clock := 5.;
  check_int "touch b" 1 (get (Engine.submit engine ~id:"b" [| (None, 0.) |]));
  ignore (Engine.drain engine);
  clock := 12.;
  Alcotest.(check (list string)) "a evicted at 12s" [ "a" ] (Engine.evict_idle engine);
  check_bool "a gone" false (Engine.has_session engine "a");
  check_bool "b alive" true (Engine.has_session engine "b");
  check_int "evicted counted" 1 (Engine.stats engine).Engine.evicted;
  clock := 30.;
  Alcotest.(check (list string)) "b evicted at 30s" [ "b" ] (Engine.evict_idle engine);
  check_int "no sessions left" 0 (Engine.session_count engine)

(* A sim session losing sync is a per-session quality signal (WSP,
   resynchronization events), never an engine fault: feed a legitimate
   captured trace, then a burst of uniformly random propositions, then
   the legitimate trace again, and read the damage off session_stats. *)
let test_sim_wsp_resync () =
  let m = model_of "RAM" in
  let np = nprops m in
  let engine = Engine.create ~idle_timeout:0. [ ("RAM", m) ] in
  get (Engine.open_session engine ~id:"w" ~model:"RAM" ~mode:`Sim);
  let text = Vcd.to_string (ram_trace ()) in
  let n1 = feed_vcd engine ~id:"w" text ~pieces:3 in
  ignore (Engine.drain engine);
  ignore (get (Engine.take_results engine ~id:"w" ~count:n1));
  let clean = get (Engine.session_stats engine ~id:"w") in
  check_int "clean cycles" n1 clean.Engine.cycles;
  let rng = Random.State.make [| 0xbad; 1 |] in
  let burst = Array.init 80 (fun _ -> (Some (Random.State.int rng np), 0.)) in
  check_int "burst enqueued" 80 (get (Engine.submit engine ~id:"w" burst));
  ignore (Engine.drain engine);
  let burst_results = get (Engine.take_results engine ~id:"w" ~count:80) in
  let n2 = feed_vcd engine ~id:"w" text ~pieces:2 in
  ignore (Engine.drain engine);
  let tail_results = get (Engine.take_results engine ~id:"w" ~count:n2) in
  let st = get (Engine.session_stats engine ~id:"w") in
  check_int "all cycles counted" (n1 + 80 + n2) st.Engine.cycles;
  check_bool "burst caused wrong instants" true
    (st.Engine.wrong_instants > clean.Engine.wrong_instants);
  check_bool "wsp positive" true (st.Engine.wsp > 0.);
  check_bool "wsp = wrong/cycles" true
    (Float.compare st.Engine.wsp
       (float_of_int st.Engine.wrong_instants /. float_of_int st.Engine.cycles)
    = 0);
  let desynced =
    Array.exists (fun (_, s) -> s = -1) burst_results
    || Array.exists (fun (_, s) -> s = -1) tail_results
  in
  let relocked = Array.exists (fun (_, s) -> s >= 0) tail_results in
  check_bool "burst desynchronized the stepper" true desynced;
  check_bool "stepper relocked on legit trace" true relocked;
  check_bool "resync events counted" true (st.Engine.resync_events >= 1)

(* ---------- checkpoint / kill / resume (shared harness) ---------- *)

let test_checkpoint_kill_resume () =
  let m = model_of "RAM" in
  let plan = mk_obs ~oseed:77 ~np:(nprops m) ~len:24 in
  let subject mode label =
    { Resume_harness.label;
      steps = Array.length plan;
      create =
        (fun () ->
          let e = Engine.create ~idle_timeout:0. [ ("RAM", m) ] in
          get (Engine.open_session e ~id:"ck" ~model:"RAM" ~mode);
          e);
      feed =
        (fun e i ->
          check_int "one cycle" 1
            (get (Engine.submit e ~id:"ck" [| (plan.(i), 0.) |]));
          ignore (Engine.drain e);
          Array.to_list (get (Engine.take_results e ~id:"ck" ~count:1)));
      save = (fun e -> get (Engine.checkpoint e ~id:"ck"));
      restore =
        (fun bytes ->
          let e = Engine.create ~idle_timeout:0. [ ("RAM", m) ] in
          get (Engine.restore_session e ~id:"ck" bytes);
          e);
      finish = (fun e -> get (Engine.session_stats e ~id:"ck")) }
  in
  let check_stats label (a : Engine.session_stats) (b : Engine.session_stats) =
    check_int (label ^ " cycles") a.Engine.cycles b.Engine.cycles;
    check_int (label ^ " wrong instants") a.Engine.wrong_instants
      b.Engine.wrong_instants;
    check_int (label ^ " resync events") a.Engine.resync_events
      b.Engine.resync_events;
    check_bool (label ^ " wsp") true (Float.compare a.Engine.wsp b.Engine.wsp = 0);
    check_bool
      (label ^ " log lik")
      true
      (Float.compare a.Engine.log_likelihood b.Engine.log_likelihood = 0)
  in
  List.iter
    (fun (mode, label) ->
      List.iter
        (fun kill_at ->
          let (eo, ef), (ao, af) =
            Resume_harness.run ?kill_at (subject mode label)
          in
          check_served
            ~what:(Printf.sprintf "%s resumed" label)
            (Array.of_list eo) (Array.of_list ao);
          check_stats label ef af;
          (* The straight run itself must equal offline inference. *)
          check_served
            ~what:(Printf.sprintf "%s straight" label)
            (offline_expected m mode plan)
            (Array.of_list eo))
        [ None; Some 1 ])
    [ (`Filter, "serve-filter"); (`Sim, "serve-sim") ];
  (* A corrupted checkpoint is an error, not a crash. *)
  let e = Engine.create ~idle_timeout:0. [ ("RAM", m) ] in
  (match Engine.restore_session e ~id:"bad" "garbage bytes" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "garbage checkpoint accepted")

(* A sim checkpoint taken mid-desynchronization carries live bans,
   cursors and the desynced/entered-via bookkeeping; the restored twin
   must walk the identical path through the recovery. *)
let test_checkpoint_mid_desync () =
  let m = model_of "RAM" in
  let np = nprops m in
  let e = Engine.create ~idle_timeout:0. [ ("RAM", m) ] in
  get (Engine.open_session e ~id:"s" ~model:"RAM" ~mode:`Sim);
  let text = Vcd.to_string (ram_trace ()) in
  let n1 = feed_vcd e ~id:"s" text ~pieces:1 in
  let rng = Random.State.make [| 0xdead; 5 |] in
  let burst = Array.init 40 (fun _ -> (Some (Random.State.int rng np), 0.)) in
  check_int "burst enqueued" 40 (get (Engine.submit e ~id:"s" burst));
  ignore (Engine.drain e);
  ignore (get (Engine.take_results e ~id:"s" ~count:(n1 + 40)));
  let mid = get (Engine.session_stats e ~id:"s") in
  check_bool "burst desynchronized" true (mid.Engine.resync_events > 0);
  let blob = get (Engine.checkpoint e ~id:"s") in
  get (Engine.restore_session e ~id:"s2" blob);
  let tail = mk_obs ~oseed:501 ~np ~len:50 in
  List.iter
    (fun id ->
      check_int "tail enqueued" 50
        (get (Engine.submit e ~id (Array.map (fun o -> (o, 0.)) tail))))
    [ "s"; "s2" ];
  ignore (Engine.drain e);
  let out = get (Engine.take_results e ~id:"s" ~count:50) in
  let out2 = get (Engine.take_results e ~id:"s2" ~count:50) in
  check_served ~what:"mid-desync twin" out out2;
  let st = get (Engine.session_stats e ~id:"s") in
  let st2 = get (Engine.session_stats e ~id:"s2") in
  check_int "twin cycles" st.Engine.cycles st2.Engine.cycles;
  check_int "twin wrong instants" st.Engine.wrong_instants
    st2.Engine.wrong_instants;
  check_int "twin resync events" st.Engine.resync_events
    st2.Engine.resync_events

(* ---------- hostile checkpoints (untrusted wire input) ---------- *)

(* Correctly framed blobs (right version, right digest) whose fields do
   not fit the model: every one must earn an [Error] — never daemon
   state, never an exception. *)
let frame payload =
  Printf.sprintf "%s\n%s\n%s" Engine.checkpoint_version
    (Digest.to_hex (Digest.string payload))
    payload

let test_hostile_checkpoints () =
  let m = model_of "RAM" in
  let e = Engine.create ~idle_timeout:0. [ ("RAM", m) ] in
  let reject what payload =
    match Engine.restore_session e ~id:("h-" ^ what) (frame payload) with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "hostile checkpoint accepted: %s" what
  in
  let rows = Hmm.state_count m.Persist.hmm in
  let uniform n = String.concat "," (List.init n (fun _ -> "0.125")) in
  let filter_payload ~steps ~belief =
    Printf.sprintf
      {|{"model":"RAM","prev_inputs":null,"backend":"filter","steps":%d,"log_lik":-1.5,"belief":[%s]}|}
      steps belief
  in
  let sim_payload ?(cycles = 5) ?(wrong = 1) ?(bans = "[]") ~mode () =
    Printf.sprintf
      {|{"model":"RAM","prev_inputs":null,"backend":"sim","mode":%s,"sim_prev_inputs":null,"entered_via":null,"progressed":false,"cycles":%d,"wrong_instants":%d,"resync_events":0,"bans":%s}|}
      mode cycles wrong bans
  in
  (* The v1 format marshalled an OCaml value; its version line is
     refused outright — nothing ever Marshal-decodes wire bytes. *)
  (match
     Engine.restore_session e ~id:"v1"
       (Printf.sprintf "psm-serve-session 1\n%s\nx"
          (Digest.to_hex (Digest.string "x")))
   with
  | Error err -> check_bool "v1 names version" true (contains err "version")
  | Ok () -> Alcotest.fail "v1 Marshal checkpoint accepted");
  reject "belief too long" (filter_payload ~steps:3 ~belief:(uniform (rows + 1)));
  reject "belief too short" (filter_payload ~steps:3 ~belief:(uniform (max 1 (rows - 1))));
  reject "negative steps" (filter_payload ~steps:(-1) ~belief:(uniform rows));
  reject "negative belief mass"
    (filter_payload ~steps:3
       ~belief:(String.concat "," ("-0.5" :: List.init (rows - 1) (fun _ -> "0.5"))));
  reject "zero belief mass"
    (filter_payload ~steps:3
       ~belief:(String.concat "," (List.init rows (fun _ -> "0"))));
  reject "ban row out of range"
    (sim_payload ~mode:{|{"kind":"unstarted"}|} ~cycles:0 ~wrong:0
       ~bans:(Printf.sprintf "[[0,%d]]" rows) ());
  reject "negative ban row"
    (sim_payload ~mode:{|{"kind":"unstarted"}|} ~cycles:0 ~wrong:0
       ~bans:"[[-1,0]]" ());
  reject "desynced row out of range"
    (sim_payload ~mode:(Printf.sprintf {|{"kind":"desynced","row":%d}|} rows) ());
  reject "synced row out of range"
    (sim_payload
       ~mode:(Printf.sprintf {|{"kind":"synced","row":%d,"cursors":[[0,0]]}|} rows)
       ());
  reject "cursor alternative out of range"
    (sim_payload ~mode:{|{"kind":"synced","row":0,"cursors":[[99,0]]}|} ());
  reject "cursor position out of range"
    (sim_payload ~mode:{|{"kind":"synced","row":0,"cursors":[[0,99]]}|} ());
  reject "synced without cursors"
    (sim_payload ~mode:{|{"kind":"synced","row":0,"cursors":[]}|} ());
  reject "wrong_instants beyond cycles"
    (sim_payload ~mode:{|{"kind":"unstarted"}|} ~cycles:2 ~wrong:3 ());
  reject "sample interface mismatch"
    {|{"model":"RAM","prev_inputs":["1"],"backend":"filter","steps":0,"log_lik":0,"belief":[]}|};
  reject "unknown backend"
    {|{"model":"RAM","prev_inputs":null,"backend":"exec","steps":0}|};
  reject "unknown model"
    {|{"model":"nope","prev_inputs":null,"backend":"filter","steps":0,"log_lik":0,"belief":[]}|};
  (* Digest mismatch is caught before any field parsing. *)
  (match
     Engine.restore_session e ~id:"dg"
       (Printf.sprintf "%s\n%s\n%s" Engine.checkpoint_version
          (Digest.to_hex (Digest.string "other"))
          (filter_payload ~steps:0 ~belief:(uniform rows)))
   with
  | Error err -> check_bool "digest named" true (contains err "digest")
  | Ok () -> Alcotest.fail "digest mismatch accepted");
  (* A well-formed handcrafted blob (not produced by export) is fine. *)
  get
    (Engine.restore_session e ~id:"ok"
       (frame (filter_payload ~steps:0 ~belief:(uniform rows))));
  check_bool "engine unharmed" true (Engine.has_session e "ok");
  (* Parser hardening: a deeply nested frame is a parse error, not a
     stack overflow. *)
  (match Json.of_string (String.make 5_000 '[') with
  | Error err -> check_bool "depth named" true (contains err "deep")
  | Ok _ -> Alcotest.fail "unterminated nesting parsed");
  match Json.of_string (String.make 99 '[' ^ "0" ^ String.make 99 ']') with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "depth-99 value rejected: %s" err

(* ---------- the daemon: socket-level fault injection ---------- *)

type client = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let send c line =
  output_string c.oc line;
  output_char c.oc '\n';
  flush c.oc

let rpc c line =
  send c line;
  input_line c.ic

let disconnect c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let req name fields = Json.to_string (Json.Obj (("op", Json.Str name) :: fields))

let observe_req ~session obs =
  req "observe"
    [ ("session", Json.Str session);
      ( "props",
        Json.List
          (Array.to_list
             (Array.map
                (function
                  | Some p -> Json.Num (float_of_int p) | None -> Json.Null)
                obs)) ) ]

let response_ok r =
  match J.member "ok" (J.of_string r) with
  | J.Bool b -> b
  | _ -> Alcotest.failf "response lacks ok: %s" r

let served_of_response r =
  let j = J.of_string r in
  let powers = List.map J.to_float (J.to_list (J.member "power" j)) in
  let states = List.map J.to_int (J.to_list (J.member "states" j)) in
  Array.of_list (List.map2 (fun p s -> (p, s)) powers states)

(* A live daemon on a Unix socket, torn down through the protocol's own
   shutdown op so the select loop exits from its request path. *)
let with_server ?(models = [ "RAM" ]) f =
  let path = Filename.temp_file "psm-serve" ".sock" in
  Sys.remove path;
  let srv =
    Server.create ~idle_timeout:0. ~listen:(`Unix path)
      (List.map (fun name -> (name, model_of name)) models)
  in
  let d = Domain.spawn (fun () -> Server.run srv) in
  Fun.protect
    ~finally:(fun () ->
      (if not (Server.shutdown_requested srv) then
         try
           let c = connect path in
           ignore (rpc c (req "shutdown" []));
           disconnect c
         with _ -> Server.request_shutdown srv);
      Domain.join d;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_server_faults () =
  with_server (fun path ->
      let c = connect path in
      (* A malformed frame poisons only itself. *)
      let r = rpc c "{\"op\":" in
      check_bool "malformed rejected" false (response_ok r);
      check_bool "malformed error named" true
        (contains (J.to_string (J.member "error" (J.of_string r))) "malformed");
      check_bool "same connection still serves" true
        (response_ok (rpc c (req "hello" [])));
      (* A deeply nested frame is a per-request parse error, not a
         daemon-killing stack overflow. *)
      check_bool "deep nesting rejected" false
        (response_ok (rpc c (String.make 10_000 '[')));
      check_bool "daemon survives deep nesting" true
        (response_ok (rpc c (req "hello" [])));
      (* Unknown op, missing fields: still per-request errors. *)
      check_bool "unknown op rejected" false (response_ok (rpc c (req "nope" [])));
      check_bool "open without model rejected" false
        (response_ok (rpc c (req "open" [ ("session", Json.Str "x") ])));
      (* A session survives its client's abrupt disconnect: continue it
         from a second connection and land exactly on the offline
         stream for the concatenated observations. *)
      let m = model_of "RAM" in
      let obs = mk_obs ~oseed:55 ~np:(nprops m) ~len:60 in
      let half = 30 in
      check_bool "open d" true
        (response_ok
           (rpc c
              (req "open"
                 [ ("session", Json.Str "d");
                   ("model", Json.Str "RAM");
                   ("mode", Json.Str "filter") ])));
      let first =
        served_of_response (rpc c (observe_req ~session:"d" (Array.sub obs 0 half)))
      in
      disconnect c;
      let c2 = connect path in
      let second =
        served_of_response
          (rpc c2 (observe_req ~session:"d" (Array.sub obs half (60 - half))))
      in
      check_served ~what:"across disconnect"
        (offline_expected m `Filter obs)
        (Array.append first second);
      check_bool "close d" true
        (response_ok (rpc c2 (req "close" [ ("session", Json.Str "d") ])));
      (* Checkpoint hex round-trips through the wire. *)
      check_bool "open r" true
        (response_ok
           (rpc c2
              (req "open"
                 [ ("session", Json.Str "r"); ("model", Json.Str "RAM") ])));
      ignore (rpc c2 (observe_req ~session:"r" (Array.sub obs 0 10)));
      let ck =
        J.to_string
          (J.member "checkpoint"
             (J.of_string (rpc c2 (req "checkpoint" [ ("session", Json.Str "r") ]))))
      in
      check_bool "restore under new id" true
        (response_ok
           (rpc c2
              (req "restore"
                 [ ("session", Json.Str "r2");
                   ("model", Json.Str "RAM");
                   ("checkpoint", Json.Str ck) ])));
      let tail_r =
        served_of_response
          (rpc c2 (observe_req ~session:"r" (Array.sub obs 10 20)))
      in
      let tail_r2 =
        served_of_response
          (rpc c2 (observe_req ~session:"r2" (Array.sub obs 10 20)))
      in
      check_served ~what:"restored session" tail_r tail_r2;
      disconnect c2)

(* ---------- golden protocol transcripts ---------- *)

(* One scripted client conversation per bundled IP, pinned request line
   by response line. Floats cross the wire as shortest round-trip
   decimals, so the baselines are exact strings. Checkpoint hex is
   deliberately not in the script: the resume semantics and hostile
   rejection have dedicated tests, the numeric protocol surface is
   what the transcript pins.
   Regenerate with PSM_REGEN_GOLDEN=1 dune runtest. *)

let transcript_ips = [ "RAM"; "MultSum"; "AES"; "Camellia"; "FIFO" ]

let regen_requested () =
  match Sys.getenv_opt "PSM_REGEN_GOLDEN" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let read_dir () = List.find_opt Sys.file_exists [ "golden"; "test/golden" ]

let regen_dir () =
  if Sys.file_exists "../../../dune-project" then "../../../test/golden"
  else if Sys.file_exists "dune-project" then "test/golden"
  else "golden"

(* Deterministic observation scripts: a fixed pattern folded over the
   model's own vocabulary size. *)
let scripted_obs ~np ~len ~phase =
  Array.init len (fun i ->
      if (i + phase) mod 7 = 3 then None else Some (((i * 3) + phase) mod np))

let transcript_script ip =
  let np = nprops (model_of ip) in
  [ req "hello" [];
    req "open"
      [ ("session", Json.Str "t1");
        ("model", Json.Str ip);
        ("mode", Json.Str "filter") ];
    observe_req ~session:"t1" (scripted_obs ~np ~len:12 ~phase:0);
    req "open"
      [ ("session", Json.Str "t2"); ("model", Json.Str ip); ("mode", Json.Str "sim") ];
    observe_req ~session:"t2" (scripted_obs ~np ~len:12 ~phase:2);
    observe_req ~session:"t1" (scripted_obs ~np ~len:8 ~phase:5);
    req "stats" [];
    req "close" [ ("session", Json.Str "t1") ];
    req "close" [ ("session", Json.Str "t2") ] ]

let run_transcript ip =
  with_server ~models:[ ip ] (fun path ->
      let c = connect path in
      let pairs = List.map (fun line -> (line, rpc c line)) (transcript_script ip) in
      disconnect c;
      pairs)

let transcript_path dir ip = Filename.concat dir ("serve_" ^ ip ^ ".json")

let write_transcript ip pairs =
  let dir = regen_dir () in
  if not (Sys.file_exists dir) then
    Alcotest.failf "golden regen: directory %s not found (run under dune)" dir;
  let path = transcript_path dir ip in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let out fmt = Printf.ksprintf (output_string oc) fmt in
      out "{\n  \"ip\": %S,\n  \"transcript\": [\n" ip;
      List.iteri
        (fun i (request, response) ->
          out "    { \"request\": %s,\n      \"response\": %s }%s\n"
            (Json.to_string (Json.Str request))
            (Json.to_string (Json.Str response))
            (if i = List.length pairs - 1 then "" else ","))
        pairs;
      out "  ]\n}\n");
  Printf.printf "regenerated %s\n" path

let check_transcript ip pairs =
  let dir =
    match read_dir () with
    | Some d -> d
    | None -> Alcotest.failf "golden directory not found from %s" (Sys.getcwd ())
  in
  let path = transcript_path dir ip in
  if not (Sys.file_exists path) then
    Alcotest.failf "%s missing - regenerate with PSM_REGEN_GOLDEN=1 dune runtest"
      path;
  let g = J.of_file path in
  check_string (ip ^ " transcript names its IP") ip (J.to_string (J.member "ip" g));
  let rows = J.to_list (J.member "transcript" g) in
  check_int (ip ^ " transcript length") (List.length rows) (List.length pairs);
  List.iteri
    (fun i (row, (request, response)) ->
      check_string
        (Printf.sprintf "%s request %d" ip i)
        (J.to_string (J.member "request" row))
        request;
      check_string
        (Printf.sprintf "%s response %d" ip i)
        (J.to_string (J.member "response" row))
        response)
    (List.combine rows pairs)

let run_transcript_case ip () =
  let pairs = run_transcript ip in
  List.iteri
    (fun i (_, response) ->
      if
        (not (response_ok response))
        && not (contains response "error")
      then Alcotest.failf "%s transcript step %d not ok: %s" ip i response)
    pairs;
  if regen_requested () then write_transcript ip pairs
  else check_transcript ip pairs

let suite =
  ( "serve",
    [ QCheck_alcotest.to_alcotest test_served_equals_offline;
      Alcotest.test_case "batched = loop (jobs 1 and 4)" `Slow
        test_batched_equals_loop;
      Alcotest.test_case "engine fault injection" `Quick test_engine_faults;
      Alcotest.test_case "vcd faults + observe equivalence" `Slow
        test_vcd_faults_and_equivalence;
      Alcotest.test_case "idle eviction (injected clock)" `Quick
        test_idle_eviction;
      Alcotest.test_case "sim WSP / resync under garbage burst" `Slow
        test_sim_wsp_resync;
      Alcotest.test_case "checkpoint kill/resume (harness)" `Slow
        test_checkpoint_kill_resume;
      Alcotest.test_case "checkpoint mid-desync (bans/cursors)" `Slow
        test_checkpoint_mid_desync;
      Alcotest.test_case "hostile checkpoints rejected" `Quick
        test_hostile_checkpoints;
      Alcotest.test_case "daemon fault injection over socket" `Slow
        test_server_faults ]
    @ List.map
        (fun ip ->
          Alcotest.test_case
            (Printf.sprintf "golden transcript (%s)" ip)
            `Slow (run_transcript_case ip))
        transcript_ips )
