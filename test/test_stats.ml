(* Tests for Psm_stats: descriptive statistics, special functions,
   distributions, t-tests, regression and the PRNG. *)

module D = Psm_stats.Descriptive
module Special = Psm_stats.Special
module Dist = Psm_stats.Distribution
module Ttest = Psm_stats.Ttest
module Reg = Psm_stats.Regression
module Prng = Psm_stats.Prng

let close ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* ---------- descriptive ---------- *)

let test_mean_variance () =
  let a = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  close "mean" 5. (D.mean a);
  (* Known dataset: population variance 4, sample variance 32/7. *)
  close "variance" (32. /. 7.) (D.variance a);
  close "stddev" (sqrt (32. /. 7.)) (D.stddev a)

let test_slices () =
  let a = [| 100.; 1.; 2.; 3.; 100. |] in
  close "mean_slice" 2. (D.mean_slice a ~start:1 ~stop:3);
  close "stddev_slice" 1. (D.stddev_slice a ~start:1 ~stop:3)

let test_min_max () =
  let lo, hi = D.min_max [| 3.; -1.; 7.; 0. |] in
  close "min" (-1.) lo;
  close "max" 7. hi

let test_online_matches_two_pass () =
  let data = Array.init 1000 (fun i -> sin (float_of_int i) *. 10.) in
  let online = D.Online.create () in
  Array.iter (D.Online.add online) data;
  close ~eps:1e-9 "mean" (D.mean data) (D.Online.mean online);
  close ~eps:1e-9 "variance" (D.variance data) (D.Online.variance online)

let test_online_merge () =
  let a = Array.init 100 (fun i -> float_of_int i) in
  let b = Array.init 57 (fun i -> float_of_int (i * i)) in
  let oa = D.Online.create () and ob = D.Online.create () in
  Array.iter (D.Online.add oa) a;
  Array.iter (D.Online.add ob) b;
  let merged = D.Online.merge oa ob in
  let both = Array.append a b in
  close ~eps:1e-9 "merged mean" (D.mean both) (D.Online.mean merged);
  close ~eps:1e-9 "merged variance" (D.variance both) (D.Online.variance merged);
  Alcotest.(check int) "merged count" 157 (D.Online.count merged)

(* ---------- special functions ---------- *)

let test_log_gamma () =
  (* Γ(n) = (n-1)! *)
  close ~eps:1e-10 "gamma(5)" (log 24.) (Special.log_gamma 5.);
  close ~eps:1e-10 "gamma(1)" 0. (Special.log_gamma 1.);
  close ~eps:1e-10 "gamma(0.5)" (log (sqrt Float.pi)) (Special.log_gamma 0.5);
  (* recurrence Γ(x+1) = xΓ(x) *)
  close ~eps:1e-9 "recurrence" (Special.log_gamma 3.7)
    (Special.log_gamma 4.7 -. log 3.7)

let test_beta () =
  (* B(a,b) = Γ(a)Γ(b)/Γ(a+b); B(2,3) = 1/12. *)
  close ~eps:1e-10 "beta(2,3)" (1. /. 12.) (Special.beta 2. 3.)

let test_incomplete_beta () =
  (* I_x(1,1) = x. *)
  close ~eps:1e-9 "I_x(1,1)" 0.42 (Special.regularized_incomplete_beta ~a:1. ~b:1. ~x:0.42);
  (* I_x(2,2) = x^2 (3 - 2x). *)
  let x = 0.3 in
  close ~eps:1e-9 "I_x(2,2)" (x *. x *. (3. -. (2. *. x)))
    (Special.regularized_incomplete_beta ~a:2. ~b:2. ~x);
  (* symmetry: I_x(a,b) = 1 - I_(1-x)(b,a). *)
  close ~eps:1e-9 "symmetry"
    (1. -. Special.regularized_incomplete_beta ~a:5. ~b:3. ~x:0.6)
    (Special.regularized_incomplete_beta ~a:3. ~b:5. ~x:0.4)

(* ---------- distributions ---------- *)

let test_student_t_cdf () =
  (* Known quantiles: t with 1 df is Cauchy: CDF(1) = 0.75. *)
  close ~eps:1e-8 "cauchy" 0.75 (Dist.student_t_cdf ~df:1. 1.);
  close ~eps:1e-8 "symmetric" 0.5 (Dist.student_t_cdf ~df:7. 0.);
  (* Classical table value: t_{0.975, 10} = 2.228. *)
  close ~eps:2e-4 "97.5% df=10" 0.975 (Dist.student_t_cdf ~df:10. 2.228139);
  (* Large df approaches the normal distribution. *)
  close ~eps:1e-3 "normal limit" (Dist.normal_cdf 1.96)
    (Dist.student_t_cdf ~df:10000. 1.96)

let test_two_sided () =
  close ~eps:2e-4 "two-sided df=10" 0.05 (Dist.student_t_sf_two_sided ~df:10. 2.228139);
  close ~eps:1e-8 "two-sided symmetric" (Dist.student_t_sf_two_sided ~df:5. 1.3)
    (Dist.student_t_sf_two_sided ~df:5. (-1.3))

let test_normal_cdf () =
  close ~eps:1e-6 "median" 0.5 (Dist.normal_cdf 0.);
  close ~eps:1e-6 "sigma" 0.8413447 (Dist.normal_cdf 1.);
  close ~eps:1e-6 "mu/sigma params" 0.8413447 (Dist.normal_cdf ~mu:10. ~sigma:2. 12.)

(* ---------- t-tests ---------- *)

let test_welch_identical () =
  let r = Ttest.welch ~mean1:5. ~stddev1:1. ~n1:50 ~mean2:5. ~stddev2:1. ~n2:50 in
  close "t = 0" 0. r.Ttest.t_statistic;
  close "p = 1" 1. r.Ttest.p_value;
  Alcotest.(check bool) "mergeable" true (Ttest.equal_means r)

let test_welch_distinct () =
  let r = Ttest.welch ~mean1:5. ~stddev1:0.5 ~n1:100 ~mean2:9. ~stddev2:0.5 ~n2:100 in
  Alcotest.(check bool) "p tiny" true (r.Ttest.p_value < 1e-6);
  Alcotest.(check bool) "not mergeable" false (Ttest.equal_means r)

let test_welch_textbook () =
  (* Welch's 1947 example-style check against scipy.stats.ttest_ind
     (equal_var=False): a = mean 20.0, sd 2.0, n 12; b = mean 22.5,
     sd 3.2, n 18: se² = 4/12 + 10.24/18, t = -2.5/0.9499 = -2.632,
     Welch–Satterthwaite df ≈ 27.93. *)
  let r = Ttest.welch ~mean1:20. ~stddev1:2.0 ~n1:12 ~mean2:22.5 ~stddev2:3.2 ~n2:18 in
  close ~eps:1e-3 "t" (-2.632) r.Ttest.t_statistic;
  close ~eps:0.05 "df" 27.93 r.Ttest.degrees_of_freedom

let test_welch_symmetry () =
  let r1 = Ttest.welch ~mean1:3. ~stddev1:1. ~n1:30 ~mean2:4. ~stddev2:2. ~n2:40 in
  let r2 = Ttest.welch ~mean1:4. ~stddev1:2. ~n1:40 ~mean2:3. ~stddev2:1. ~n2:30 in
  close "t antisymmetric" (-.r1.Ttest.t_statistic) r2.Ttest.t_statistic;
  close "p symmetric" r1.Ttest.p_value r2.Ttest.p_value

let test_welch_degenerate () =
  let equal = Ttest.welch ~mean1:2. ~stddev1:0. ~n1:10 ~mean2:2. ~stddev2:0. ~n2:10 in
  close "degenerate equal p" 1. equal.Ttest.p_value;
  let diff = Ttest.welch ~mean1:2. ~stddev1:0. ~n1:10 ~mean2:3. ~stddev2:0. ~n2:10 in
  close "degenerate distinct p" 0. diff.Ttest.p_value

let test_one_sample () =
  (* A value far outside the population is rejected... *)
  let far = Ttest.one_sample ~mean:10. ~stddev:1. ~n:50 ~value:20. in
  Alcotest.(check bool) "far not mergeable" false (Ttest.equal_means far);
  (* ...one near the mean is not. *)
  let near = Ttest.one_sample ~mean:10. ~stddev:1. ~n:50 ~value:10.2 in
  Alcotest.(check bool) "near mergeable" true (Ttest.equal_means near)

let test_alpha_monotonicity () =
  let r = Ttest.welch ~mean1:5. ~stddev1:1. ~n1:20 ~mean2:5.8 ~stddev2:1. ~n2:20 in
  (* p ≈ 0.017: mergeable at alpha = 0.005, not at alpha = 0.05. *)
  Alcotest.(check bool) "strict alpha merges" true (Ttest.equal_means ~alpha:0.005 r);
  Alcotest.(check bool) "loose alpha rejects" false (Ttest.equal_means ~alpha:0.05 r)

(* ---------- regression ---------- *)

let test_fit_exact_line () =
  let x = Array.init 50 (fun i -> float_of_int i) in
  let y = Array.map (fun v -> (3.5 *. v) -. 7.) x in
  let fit = Reg.fit ~x ~y in
  close ~eps:1e-9 "slope" 3.5 fit.Reg.slope;
  close ~eps:1e-7 "intercept" (-7.) fit.Reg.intercept;
  close ~eps:1e-9 "r" 1. fit.Reg.r;
  close ~eps:1e-9 "residuals" 0. (Reg.residual_stddev fit ~x ~y)

let test_fit_negative_correlation () =
  let x = Array.init 20 (fun i -> float_of_int i) in
  let y = Array.map (fun v -> 100. -. (2. *. v)) x in
  let fit = Reg.fit ~x ~y in
  close ~eps:1e-9 "slope" (-2.) fit.Reg.slope;
  close ~eps:1e-9 "r" (-1.) fit.Reg.r

let test_pearson_independent () =
  (* Orthogonal patterns have zero correlation. *)
  let x = [| 1.; -1.; 1.; -1. |] and y = [| 1.; 1.; -1.; -1. |] in
  close ~eps:1e-12 "r = 0" 0. (Reg.pearson x y)

let test_fit_constant_x () =
  let x = Array.make 10 4. and y = Array.init 10 float_of_int in
  let fit = Reg.fit ~x ~y in
  close "slope 0" 0. fit.Reg.slope;
  close "intercept = mean y" 4.5 fit.Reg.intercept

(* ---------- PRNG ---------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_bounds () =
  let rng = Prng.create ~seed:7L in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let f = Prng.float rng 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0. && f < 2.5)
  done

let test_prng_bits_width () =
  let rng = Prng.create ~seed:9L in
  List.iter
    (fun w ->
      Alcotest.(check int) "width" w (Psm_bits.Bits.width (Prng.bits rng ~width:w)))
    [ 1; 31; 32; 64; 65; 128; 200 ]

let test_prng_bits_balanced () =
  (* A 128-bit draw averages ~64 set bits; over 200 draws the mean should
     land well within 5 sigma. *)
  let rng = Prng.create ~seed:11L in
  let total = ref 0 in
  for _ = 1 to 200 do
    total := !total + Psm_bits.Bits.popcount (Prng.bits rng ~width:128)
  done;
  let mean = float_of_int !total /. 200. in
  Alcotest.(check bool) "balanced" true (abs_float (mean -. 64.) < 2.)

let test_prng_split_independent () =
  let rng = Prng.create ~seed:5L in
  let s1 = Prng.split rng in
  let s2 = Prng.split rng in
  Alcotest.(check bool) "split streams differ" true
    (Prng.next_int64 s1 <> Prng.next_int64 s2)

(* ---------- properties ---------- *)

let prop name arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:100 ~name arb f)

let arb_floats =
  QCheck.(list_of_size Gen.(int_range 2 60) (float_range (-1000.) 1000.))

let properties =
  [ prop "welford equals two-pass" arb_floats (fun l ->
        let a = Array.of_list l in
        let online = D.Online.create () in
        Array.iter (D.Online.add online) a;
        abs_float (D.mean a -. D.Online.mean online) < 1e-6
        && abs_float (D.variance a -. D.Online.variance online) < 1e-4);
    prop "merge equals append"
      (QCheck.pair arb_floats arb_floats)
      (fun (l1, l2) ->
        let a = Array.of_list l1 and b = Array.of_list l2 in
        let oa = D.Online.create () and ob = D.Online.create () in
        Array.iter (D.Online.add oa) a;
        Array.iter (D.Online.add ob) b;
        let merged = D.Online.merge oa ob in
        let whole = D.Online.create () in
        Array.iter (D.Online.add whole) (Array.append a b);
        abs_float (D.Online.mean merged -. D.Online.mean whole) < 1e-6
        && abs_float (D.Online.variance merged -. D.Online.variance whole) < 1e-4);
    prop "t cdf monotone" (QCheck.pair (QCheck.float_range (-5.) 5.) (QCheck.float_range (-5.) 5.))
      (fun (a, b) ->
        let lo = Float.min a b and hi = Float.max a b in
        Dist.student_t_cdf ~df:7. lo <= Dist.student_t_cdf ~df:7. hi +. 1e-12);
    prop "t cdf complement" (QCheck.float_range (-6.) 6.) (fun t ->
        abs_float (Dist.student_t_cdf ~df:9. t +. Dist.student_t_cdf ~df:9. (-.t) -. 1.)
        < 1e-9);
    prop "pearson bounded" (QCheck.pair arb_floats arb_floats) (fun (l1, l2) ->
        let n = min (List.length l1) (List.length l2) in
        QCheck.assume (n >= 2);
        let x = Array.of_list (List.filteri (fun i _ -> i < n) l1) in
        let y = Array.of_list (List.filteri (fun i _ -> i < n) l2) in
        let r = Reg.pearson x y in
        r >= -1.0000001 && r <= 1.0000001);
    prop "regression recovers affine data"
      (QCheck.triple (QCheck.float_range (-5.) 5.) (QCheck.float_range (-100.) 100.) arb_floats)
      (fun (slope, intercept, xs) ->
        QCheck.assume (List.length xs >= 3);
        let x = Array.of_list xs in
        QCheck.assume (D.variance x > 1e-6);
        let y = Array.map (fun v -> (slope *. v) +. intercept) x in
        let fit = Reg.fit ~x ~y in
        abs_float (fit.Reg.slope -. slope) < 1e-4
        && abs_float (fit.Reg.intercept -. intercept) < 1e-2) ]

let suite =
  ( "stats",
    [ Alcotest.test_case "mean/variance" `Quick test_mean_variance;
      Alcotest.test_case "slices" `Quick test_slices;
      Alcotest.test_case "min/max" `Quick test_min_max;
      Alcotest.test_case "online matches two-pass" `Quick test_online_matches_two_pass;
      Alcotest.test_case "online merge" `Quick test_online_merge;
      Alcotest.test_case "log_gamma" `Quick test_log_gamma;
      Alcotest.test_case "beta" `Quick test_beta;
      Alcotest.test_case "incomplete beta" `Quick test_incomplete_beta;
      Alcotest.test_case "student t cdf" `Quick test_student_t_cdf;
      Alcotest.test_case "two-sided p" `Quick test_two_sided;
      Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
      Alcotest.test_case "welch identical" `Quick test_welch_identical;
      Alcotest.test_case "welch distinct" `Quick test_welch_distinct;
      Alcotest.test_case "welch textbook values" `Quick test_welch_textbook;
      Alcotest.test_case "welch symmetry" `Quick test_welch_symmetry;
      Alcotest.test_case "welch degenerate" `Quick test_welch_degenerate;
      Alcotest.test_case "one-sample" `Quick test_one_sample;
      Alcotest.test_case "alpha monotonicity" `Quick test_alpha_monotonicity;
      Alcotest.test_case "fit exact line" `Quick test_fit_exact_line;
      Alcotest.test_case "fit negative" `Quick test_fit_negative_correlation;
      Alcotest.test_case "pearson independent" `Quick test_pearson_independent;
      Alcotest.test_case "fit constant x" `Quick test_fit_constant_x;
      Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
      Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
      Alcotest.test_case "prng bits width" `Quick test_prng_bits_width;
      Alcotest.test_case "prng bits balanced" `Quick test_prng_bits_balanced;
      Alcotest.test_case "prng split" `Quick test_prng_split_independent ]
    @ properties )
