(* Run-length compaction equivalence: every RLE-gated fast path must be
   bit-identical to the per-cycle reference path (--no-rle). Pinned here
   the same three ways PR 7 pinned stream≡batch: deterministic
   adversarial run shapes, the bundled-IP captures, and a QCheck
   property over random traces — with *exact* float comparison, because
   the optimization's contract is bit-identity, not tolerance. *)

module Flow = Psm_flow.Flow
module Stream = Psm_flow.Stream_train
module Persist = Psm_flow.Persist
module Estimate = Psm_flow.Estimate
module Psm = Psm_core.Psm
module Assertion = Psm_core.Assertion
module Power_attr = Psm_core.Power_attr
module Optimize = Psm_core.Optimize
module Functional_trace = Psm_trace.Functional_trace
module Power_trace = Psm_trace.Power_trace
module Interface = Psm_trace.Interface
module Signal = Psm_trace.Signal
module Runs = Psm_trace.Runs
module Bits = Psm_bits.Bits
module Miner = Psm_mining.Miner
module Prop_trace = Psm_mining.Prop_trace
module Multi_sim = Psm_hmm.Multi_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let exact label expected actual =
  if not (Float.equal expected actual) then
    Alcotest.failf "%s: per-cycle %.17g, RLE %.17g" label expected actual

let with_rle b f = Runs.with_enabled b f

(* ---------- the Runs structure itself ---------- *)

let iface2 =
  Interface.create [ Signal.input "a" 2; Signal.input "b" 1; Signal.output "c" 1 ]

let sample2 a b c = [| Bits.of_int ~width:2 a; Bits.of_int ~width:1 b; Bits.of_int ~width:1 c |]

let test_runs_structure () =
  (* Builder-incremental runs = lazy equality scan, on a mixed shape. *)
  let rows = [ (0, 0, 0); (0, 0, 0); (1, 1, 0); (1, 1, 0); (1, 1, 0); (2, 0, 1) ] in
  let builder = Functional_trace.Builder.create iface2 in
  List.iter (fun (a, b, c) -> Functional_trace.Builder.append builder (sample2 a b c)) rows;
  let built = Functional_trace.Builder.finish builder in
  let scanned =
    Functional_trace.of_samples iface2
      (Array.of_list (List.map (fun (a, b, c) -> sample2 a b c) rows))
  in
  let rb = Functional_trace.runs built and rs = Functional_trace.runs scanned in
  check_int "count" (Runs.count rs) (Runs.count rb);
  check_int "total" (Runs.total rs) (Runs.total rb);
  check_int "count value" 3 (Runs.count rb);
  check_int "total value" 6 (Runs.total rb);
  check_int "max run" 3 (Runs.max_run rb);
  exact "mean run" 2. (Runs.mean_run rb);
  exact "compression" 0.5 (Runs.compression rb);
  Alcotest.(check (list (pair int int))) "histogram" [ (0, 1); (1, 2) ] (Runs.histogram rb);
  let collected = ref [] in
  Runs.iter rb (fun ~index ~start ~len -> collected := (index, start, len) :: !collected);
  Alcotest.(check (list (triple int int int)))
    "iter" [ (0, 0, 2); (1, 2, 3); (2, 5, 1) ] (List.rev !collected);
  (* Empty trace. *)
  let empty = Functional_trace.of_samples iface2 [||] in
  check_int "empty count" 0 (Runs.count (Functional_trace.runs empty));
  exact "empty compression" 1. (Runs.compression (Functional_trace.runs empty))

(* ---------- bulk counter primitives ---------- *)

let test_value_counter_run () =
  (* observe_run ≡ the per-cycle observe loop, including around hapax
     pruning (tiny prune_at forces the fallback path). *)
  let snapshot c = Miner.Value_counter.fold (fun v cell acc -> (v, cell) :: acc) c [] in
  let vals = [| Bits.of_int ~width:4 3; Bits.of_int ~width:4 9; Bits.of_int ~width:4 12 |] in
  List.iter
    (fun prune_at ->
      let reference = Miner.Value_counter.create ?prune_at ~short_below:4 () in
      let bulk = Miner.Value_counter.create ?prune_at ~short_below:4 () in
      let time = ref 0 in
      let feed v len =
        for i = 0 to len - 1 do
          Miner.Value_counter.observe reference (!time + i) v
        done;
        Miner.Value_counter.observe_run bulk !time v len;
        time := !time + len
      in
      feed vals.(0) 5;
      feed vals.(1) 1;
      feed vals.(0) 3;
      feed vals.(2) 7;
      time := !time + 2 (* trace gap *);
      feed vals.(2) 4;
      feed vals.(1) 2;
      let label = Printf.sprintf "prune_at=%s"
          (match prune_at with Some p -> string_of_int p | None -> "default") in
      List.iter2
        (fun (va, (ca : Miner.Value_counter.cell)) (vb, cb) ->
          check_bool (label ^ " value") true (Bits.equal va vb);
          check_int (label ^ " occ") ca.Miner.Value_counter.occ cb.Miner.Value_counter.occ;
          check_int (label ^ " runs") ca.Miner.Value_counter.runs cb.Miner.Value_counter.runs;
          check_int (label ^ " short") ca.Miner.Value_counter.short_runs
            cb.Miner.Value_counter.short_runs)
        (snapshot reference) (snapshot bulk))
    [ None; Some 1; Some 2 ]

(* ---------- adversarial run shapes ---------- *)

let adversarial_interface = Interface.create [ Signal.input "x" 2; Signal.output "y" 1 ]

let adv_trace rows powers =
  ( Functional_trace.of_samples adversarial_interface
      (Array.of_list
         (List.map (fun (x, y) -> [| Bits.of_int ~width:2 x; Bits.of_int ~width:1 y |]) rows)),
    Power_trace.of_array (Array.of_list powers) )

(* All-distinct rows: every cycle is its own run. *)
let all_distinct n =
  adv_trace
    (List.init n (fun i -> (i mod 4, (i / 4) mod 2)))
    (List.init n (fun i -> 1. +. float_of_int (i mod 7)))

(* One giant run: the whole trace is a single self-loop. *)
let giant_run n =
  adv_trace (List.init n (fun _ -> (2, 1))) (List.init n (fun i -> 5. +. (0.5 *. float_of_int (i mod 3))))

(* Alternating 2-cycle runs: AABBAABB… *)
let alternating n =
  adv_trace
    (List.init n (fun i -> if i mod 4 < 2 then (1, 0) else (3, 1)))
    (List.init n (fun i -> if i mod 4 < 2 then 2. else 9.))

(* ---------- exact model comparison ---------- *)

let sorted_states psm =
  List.sort (fun (a : Psm.state) b -> compare a.Psm.id b.Psm.id) (Psm.states psm)

let check_attr label (a : Power_attr.t) (b : Power_attr.t) =
  exact (label ^ " mu") a.Power_attr.mu b.Power_attr.mu;
  exact (label ^ " sigma") a.Power_attr.sigma b.Power_attr.sigma;
  check_int (label ^ " n") a.Power_attr.n b.Power_attr.n;
  Alcotest.(check (list (triple int int int)))
    (label ^ " intervals")
    (List.map (fun iv -> (iv.Power_attr.trace, iv.Power_attr.start, iv.Power_attr.stop))
       a.Power_attr.intervals)
    (List.map (fun iv -> (iv.Power_attr.trace, iv.Power_attr.start, iv.Power_attr.stop))
       b.Power_attr.intervals)

let check_counts label a b =
  check_int (label ^ " entries") (List.length a) (List.length b);
  List.iter2
    (fun ((ka : int * int), va) ((kb : int * int), vb) ->
      Alcotest.(check (pair int int)) (label ^ " key") ka kb;
      exact (label ^ " value") va vb)
    a b

let check_psm_exact name ap bp =
  check_int (name ^ " states") (Psm.state_count ap) (Psm.state_count bp);
  check_int (name ^ " transitions") (Psm.transition_count ap) (Psm.transition_count bp);
  Alcotest.(check (list int)) (name ^ " initial") (Psm.initial ap) (Psm.initial bp);
  Alcotest.(check (list (triple int int int)))
    (name ^ " transition set")
    (List.map (fun (t : Psm.transition) -> (t.Psm.src, t.Psm.guard, t.Psm.dst))
       (Psm.transitions ap))
    (List.map (fun (t : Psm.transition) -> (t.Psm.src, t.Psm.guard, t.Psm.dst))
       (Psm.transitions bp));
  List.iter2
    (fun (a : Psm.state) (b : Psm.state) ->
      let label = Printf.sprintf "%s state %d" name a.Psm.id in
      check_int (label ^ " id") a.Psm.id b.Psm.id;
      check_bool (label ^ " assertion") true (Assertion.equal a.Psm.assertion b.Psm.assertion);
      check_attr label a.Psm.attr b.Psm.attr;
      (match (a.Psm.output, b.Psm.output) with
      | Psm.Const x, Psm.Const y -> exact (label ^ " const") x y
      | Psm.Affine fa, Psm.Affine fb ->
          exact (label ^ " slope") fa.slope fb.slope;
          exact (label ^ " intercept") fa.intercept fb.intercept
      | _ -> Alcotest.failf "%s: output kinds differ" label);
      check_int (label ^ " components") (List.length a.Psm.components)
        (List.length b.Psm.components);
      List.iter2
        (fun (aa, aattr) (ba, battr) ->
          check_bool (label ^ " component assertion") true (Assertion.equal aa ba);
          check_attr (label ^ " component") aattr battr)
        a.Psm.components b.Psm.components)
    (sorted_states ap) (sorted_states bp)

let check_trained_exact name (a : Flow.trained) (b : Flow.trained) =
  check_int (name ^ " props")
    (Prop_trace.Table.prop_count a.Flow.table)
    (Prop_trace.Table.prop_count b.Flow.table);
  Array.iter2
    (fun ga gb ->
      Alcotest.(check (array int)) (name ^ " gamma")
        (Prop_trace.prop_ids ga) (Prop_trace.prop_ids gb))
    a.Flow.gammas b.Flow.gammas;
  check_psm_exact (name ^ " raw") a.Flow.raw b.Flow.raw;
  check_psm_exact name a.Flow.optimized b.Flow.optimized;
  check_counts (name ^ " transition counts") a.Flow.transition_counts b.Flow.transition_counts;
  check_counts (name ^ " emission counts") a.Flow.emission_counts b.Flow.emission_counts;
  check_int (name ^ " reports")
    (List.length a.Flow.optimize_reports) (List.length b.Flow.optimize_reports);
  List.iter2
    (fun (ra : Optimize.report) (rb : Optimize.report) ->
      check_int (name ^ " report state") ra.Optimize.state_id rb.Optimize.state_id;
      check_bool (name ^ " report upgraded") ra.Optimize.upgraded rb.Optimize.upgraded;
      exact (name ^ " report sigma") ra.Optimize.relative_sigma rb.Optimize.relative_sigma;
      exact (name ^ " report r") ra.Optimize.correlation rb.Optimize.correlation)
    a.Flow.optimize_reports b.Flow.optimize_reports

let check_stream_exact name (a : Stream.result) (b : Stream.result) =
  check_int (name ^ " props")
    (Prop_trace.Table.prop_count a.Stream.table)
    (Prop_trace.Table.prop_count b.Stream.table);
  check_int (name ^ " cycles") a.Stream.cycles b.Stream.cycles;
  check_psm_exact name a.Stream.optimized b.Stream.optimized;
  check_counts (name ^ " transition counts") a.Stream.transition_counts
    b.Stream.transition_counts;
  check_counts (name ^ " emission counts") a.Stream.emission_counts b.Stream.emission_counts

(* Simulation-side equivalence on one model: Multi_sim's memoized stepper
   and the filtering posterior stream, per-cycle exact. *)
let check_simulation_exact name (reference : Flow.trained) traces =
  let model =
    { Persist.table = reference.Flow.table;
      psm = reference.Flow.optimized;
      hmm = reference.Flow.hmm }
  in
  List.iter
    (fun trace ->
      let sim_ref = with_rle false (fun () -> Multi_sim.simulate reference.Flow.hmm trace) in
      let sim_rle = with_rle true (fun () -> Multi_sim.simulate reference.Flow.hmm trace) in
      Alcotest.(check (array int)) (name ^ " sim states")
        sim_ref.Multi_sim.state_trace sim_rle.Multi_sim.state_trace;
      Array.iter2 (exact (name ^ " sim estimate")) sim_ref.Multi_sim.estimate
        sim_rle.Multi_sim.estimate;
      check_int (name ^ " sim wrong") sim_ref.Multi_sim.wrong_instants
        sim_rle.Multi_sim.wrong_instants;
      let filter_outputs enabled =
        with_rle enabled (fun () ->
            let est = Estimate.of_model ~mode:`Filter model in
            let n = Functional_trace.length trace in
            Array.init n (fun time ->
                Estimate.step_sample est (Functional_trace.sample trace ~time)))
      in
      Array.iter2
        (fun (pa, sa) (pb, sb) ->
          exact (name ^ " filter power") pa pb;
          check_int (name ^ " filter state") sa sb)
        (filter_outputs false) (filter_outputs true))
    traces

let check_all_exact name pairs =
  let traces, powers = List.split pairs in
  let batch_ref = with_rle false (fun () -> Flow.train ~traces ~powers ()) in
  let batch_rle = with_rle true (fun () -> Flow.train ~traces ~powers ()) in
  check_trained_exact name batch_ref batch_rle;
  let stream_ref =
    with_rle false (fun () -> Stream.train_traces ~watermark:32 ~traces ~powers ())
  in
  let stream_rle =
    with_rle true (fun () -> Stream.train_traces ~watermark:32 ~traces ~powers ())
  in
  check_stream_exact (name ^ " stream") stream_ref stream_rle;
  check_simulation_exact name batch_ref traces

let test_adversarial_shapes () =
  check_all_exact "all-distinct" [ all_distinct 120 ];
  check_all_exact "giant-run" [ giant_run 150 ];
  check_all_exact "alternating" [ alternating 160 ];
  (* Mixed multi-trace: all three shapes as one training set. *)
  check_all_exact "mixed" [ all_distinct 90; giant_run 110; alternating 100 ]

(* ---------- bundled IP ---------- *)

let test_ip_equivalence () =
  let traces, powers = Test_stream.capture_suite ~total_length:3000 "RAM" Psm_ips.Ram.create in
  check_all_exact "RAM" (List.combine traces powers)

(* ---------- QCheck property ---------- *)

let test_random_rle_equiv =
  QCheck.Test.make ~count:25 ~name:"RLE pipeline = per-cycle pipeline on random traces"
    (QCheck.make Test_stream.gen_pair) (fun pairs ->
      check_all_exact "random" pairs;
      true)

(* ---------- prop-trace segment view ---------- *)

let test_iter_prop_runs () =
  let trace, _ = alternating 40 in
  let vocabulary = Miner.mine_vocabulary [ trace ] in
  let table = Prop_trace.Table.create vocabulary in
  let gamma = Prop_trace.of_functional table trace in
  let n = Prop_trace.length gamma in
  (* Windowed per-run iteration must cover exactly the per-cycle ids. *)
  List.iter
    (fun (start, stop) ->
      let expect = ref [] in
      for t = stop downto start do
        expect := Prop_trace.prop_at gamma t :: !expect
      done;
      let got = ref [] in
      Prop_trace.iter_prop_runs gamma ~start ~stop (fun p ~start:_ ~len ->
          for _ = 1 to len do
            got := p :: !got
          done);
      Alcotest.(check (list int))
        (Printf.sprintf "window [%d,%d]" start stop)
        !expect (List.rev !got))
    [ (0, n - 1); (0, 0); (n - 1, n - 1); (3, 17); (1, n - 2) ];
  (* Γ itself is identical with and without RLE classification. *)
  let gamma_ref =
    with_rle false (fun () ->
        Prop_trace.of_functional (Prop_trace.Table.create vocabulary) trace)
  in
  Alcotest.(check (array int)) "gamma ids"
    (Prop_trace.prop_ids gamma_ref) (Prop_trace.prop_ids gamma)

let suite =
  ( "rle",
    [ Alcotest.test_case "runs: builder = scan, stats" `Quick test_runs_structure;
      Alcotest.test_case "value counter bulk = per-cycle (pruning)" `Quick
        test_value_counter_run;
      Alcotest.test_case "prop-trace segment windows" `Quick test_iter_prop_runs;
      Alcotest.test_case "adversarial shapes: rle = per-cycle" `Quick
        test_adversarial_shapes;
      Alcotest.test_case "RAM capture: rle = per-cycle" `Slow test_ip_equivalence;
      QCheck_alcotest.to_alcotest test_random_rle_equiv ] )
