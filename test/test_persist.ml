(* Tests for model persistence: save/load round-trips and format
   robustness. *)

module Persist = Psm_flow.Persist
module Flow = Psm_flow.Flow
module Workloads = Psm_ips.Workloads
module Psm = Psm_core.Psm
module Table = Psm_mining.Prop_trace.Table

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let train_ip name make total =
  let ip = make () in
  let suite = Workloads.suite ~parts:3 ~total_length:total ~long:false name in
  (ip, Flow.train_on_ip ip suite)

let roundtrip_case name make total eval =
  let ip, trained = train_ip name make total in
  let model = Persist.load (Persist.save trained) in
  check_int "states" (Psm.state_count trained.Flow.optimized)
    (Psm.state_count model.Persist.psm);
  check_int "transitions"
    (Psm.transition_count trained.Flow.optimized)
    (Psm.transition_count model.Persist.psm);
  check_int "props" (Table.prop_count trained.Flow.table)
    (Table.prop_count model.Persist.table);
  check_int "initial multiplicity"
    (List.length (Psm.initial trained.Flow.optimized))
    (List.length (Psm.initial model.Persist.psm));
  (* Estimates over an unseen workload must be bit-identical. *)
  let long = Workloads.long_for ~length:eval name in
  let trace, _ = Psm_ips.Capture.run ip long in
  let original = Psm_hmm.Multi_sim.simulate trained.Flow.hmm trace in
  (* Classification uses the table captured inside each PSM, so the trace
     must be re-captured for the reloaded model's table. *)
  let ip2 = make () in
  let trace2, _ = Psm_ips.Capture.run ip2 long in
  let reloaded = Psm_hmm.Multi_sim.simulate model.Persist.hmm trace2 in
  Alcotest.(check (array (float 0.))) "identical estimates"
    original.Psm_hmm.Multi_sim.estimate reloaded.Psm_hmm.Multi_sim.estimate;
  check_int "identical wrong instants" original.Psm_hmm.Multi_sim.wrong_instants
    reloaded.Psm_hmm.Multi_sim.wrong_instants

let test_roundtrip_ram () = roundtrip_case "RAM" Psm_ips.Ram.create 12000 8000
let test_roundtrip_multsum () = roundtrip_case "MultSum" Psm_ips.Multsum.create 9000 6000
let test_roundtrip_aes () = roundtrip_case "AES" Psm_ips.Aes.create 9000 6000

let test_roundtrip_preserves_regression_outputs () =
  let _, trained = train_ip "RAM" Psm_ips.Ram.create 20000 in
  let model = Persist.load (Persist.save trained) in
  let affine p =
    List.filter
      (fun (s : Psm.state) -> match s.Psm.output with Psm.Affine _ -> true | _ -> false)
      (Psm.states p)
    |> List.length
  in
  check_bool "has regression states" true (affine trained.Flow.optimized > 0);
  check_int "regression outputs preserved" (affine trained.Flow.optimized)
    (affine model.Persist.psm)

let test_save_is_stable () =
  (* Two independent trainings of the same suite serialize identically:
     the whole flow is deterministic. *)
  let _, trained1 = train_ip "MultSum" Psm_ips.Multsum.create 6000 in
  let _, trained2 = train_ip "MultSum" Psm_ips.Multsum.create 6000 in
  Alcotest.(check string) "deterministic flow" (Persist.save trained1)
    (Persist.save trained2);
  let model = Persist.load (Persist.save trained1) in
  check_int "reload state count" (Psm.state_count trained1.Flow.optimized)
    (Psm.state_count model.Persist.psm)

let test_hier_roundtrip () =
  let d = Psm_ips.Camellia.create_decomposed () in
  let suite = Workloads.suite ~parts:2 ~total_length:10000 ~long:false "Camellia" in
  let hier = Psm_flow.Hier.train d suite in
  let parts = Psm_flow.Hier.load (Psm_flow.Hier.save hier) in
  Alcotest.(check (list string)) "part names" [ "datapath"; "scrubber" ]
    (List.map (fun p -> p.Psm_flow.Hier.part_name) parts);
  (* Reloaded hierarchical model scores like the original. *)
  let long = Workloads.camellia_long ~length:12000 () in
  let original = Psm_flow.Hier.evaluate hier d long in
  let reloaded = Psm_flow.Hier.evaluate_loaded parts d long in
  Alcotest.(check (float 1e-9)) "same MRE" original.Psm_hmm.Accuracy.mre
    reloaded.Psm_hmm.Accuracy.mre

let expect_parse_error text =
  try
    ignore (Persist.load text);
    false
  with Persist.Parse_error _ -> true

let test_rejects_garbage () =
  check_bool "empty" true (expect_parse_error "");
  check_bool "wrong header" true (expect_parse_error "not a model\nfoo");
  check_bool "truncated" true
    (expect_parse_error "psm-repro-model 1\ninterface 2\nin a 1")

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_bad_version_report () =
  (* The version-mismatch error must name what was found, what was
     expected and where it came from. *)
  (match Persist.load "psm-repro-model 99\n" with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Persist.Parse_error msg ->
      check_bool "names found header" true (contains msg "psm-repro-model 99");
      check_bool "names expected header" true (contains msg "psm-repro-model 1");
      check_bool "names source" true (contains msg "<string>"));
  let path = Filename.temp_file "psm-model" ".psm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "psm-repro-trainer 1\nstreaming checkpoint\n";
      close_out oc;
      match Persist.load_file path with
      | _ -> Alcotest.fail "expected Parse_error"
      | exception Persist.Parse_error msg ->
          check_bool "names file path" true (contains msg path);
          (* A trainer checkpoint is redirected, not just rejected. *)
          check_bool "redirects to trainer loader" true
            (contains msg "load_trainer_file"))

let test_rejects_tampered () =
  let _, trained = train_ip "MultSum" Psm_ips.Multsum.create 6000 in
  let text = Persist.save trained in
  (* Chop off the end marker and some lines. *)
  let truncated = String.sub text 0 (String.length text - 40) in
  check_bool "tampered rejected" true (expect_parse_error truncated)

let suite =
  ( "persist",
    [ Alcotest.test_case "roundtrip RAM" `Slow test_roundtrip_ram;
      Alcotest.test_case "roundtrip MultSum" `Slow test_roundtrip_multsum;
      Alcotest.test_case "roundtrip AES" `Slow test_roundtrip_aes;
      Alcotest.test_case "regression outputs preserved" `Slow
        test_roundtrip_preserves_regression_outputs;
      Alcotest.test_case "deterministic save" `Quick test_save_is_stable;
      Alcotest.test_case "hierarchical roundtrip" `Slow test_hier_roundtrip;
      Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
      Alcotest.test_case "bad version report" `Quick test_bad_version_report;
      Alcotest.test_case "rejects tampered" `Quick test_rejects_tampered ] )
