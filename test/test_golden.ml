(* Golden-trace regression tests.

   Each case trains on a bundled IP workload — whose stimulus generators
   use fixed splitmix64 seeds, so the training traces are bit-identical
   on every run — and pins the pipeline's numeric outputs against a
   checked-in baseline: exact state / transition / machine / proposition
   counts, and every state's power attributes ⟨μ, σ, n⟩ within a
   documented float tolerance.

   Regenerating after an intentional model change:

     PSM_REGEN_GOLDEN=1 dune runtest

   rewrites test/golden/*.json in the source tree from the current
   pipeline output (see DESIGN.md, Observability & golden baselines). *)

module Flow = Psm_flow.Flow
module Workloads = Psm_ips.Workloads
module Psm = Psm_core.Psm
module Power_attr = Psm_core.Power_attr
module J = Json_util

(* Relative tolerance for ⟨μ, σ⟩ comparisons. The pipeline is
   deterministic, so in practice baselines match bit-for-bit; the slack
   only absorbs float-op differences across compiler versions/targets. *)
let tolerance = 1e-9

let cases =
  [ ("RAM", Psm_ips.Ram.create, 4, 8_000);
    ("MultSum", Psm_ips.Multsum.create, 4, 8_000);
    ("AES", Psm_ips.Aes.create, 4, 8_000);
    ("Camellia", Psm_ips.Camellia.create, 4, 8_000) ]

let regen_requested () =
  match Sys.getenv_opt "PSM_REGEN_GOLDEN" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

(* The goldens live in test/golden of the source tree and are declared as
   test deps, so under `dune runtest` they sit next to the binary; under
   `dune exec test/main.exe` from the repo root they are at test/golden. *)
let read_dir () =
  List.find_opt Sys.file_exists [ "golden"; "test/golden" ]

(* Regeneration must escape the dune sandbox and write to the source
   tree, never to _build. *)
let regen_dir () =
  if Sys.file_exists "../../../dune-project" then "../../../test/golden"
  else if Sys.file_exists "dune-project" then "test/golden"
  else "golden"

let train (name, make, parts, total_length) =
  let ip = make () in
  let suite = Workloads.suite ~parts ~total_length ~long:false name in
  Flow.train_on_ip ip suite

let sorted_states psm =
  List.sort
    (fun (a : Psm.state) (b : Psm.state) -> compare a.Psm.id b.Psm.id)
    (Psm.states psm)

let golden_of_trained (name, _, parts, total_length) (trained : Flow.trained) =
  let psm = trained.Flow.optimized in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n";
  out "  \"ip\": %S,\n" name;
  out "  \"parts\": %d,\n" parts;
  out "  \"total_length\": %d,\n" total_length;
  out "  \"machines\": %d,\n" (Psm.machine_count psm);
  out "  \"states\": %d,\n" (Psm.state_count psm);
  out "  \"transitions\": %d,\n" (Psm.transition_count psm);
  out "  \"initials\": %d,\n" (List.length (Psm.initial psm));
  out "  \"props\": %d,\n"
    (Psm_mining.Prop_trace.Table.prop_count trained.Flow.table);
  out "  \"raw_states\": %d,\n" (Psm.state_count trained.Flow.raw);
  out "  \"attrs\": [\n";
  let states = sorted_states psm in
  List.iteri
    (fun i (s : Psm.state) ->
      out "    { \"id\": %d, \"mu\": %.17g, \"sigma\": %.17g, \"n\": %d }%s\n"
        s.Psm.id s.Psm.attr.Power_attr.mu s.Psm.attr.Power_attr.sigma
        s.Psm.attr.Power_attr.n
        (if i = List.length states - 1 then "" else ","))
    states;
  out "  ]\n}\n";
  Buffer.contents buf

let regen case trained =
  let name, _, _, _ = case in
  let dir = regen_dir () in
  if not (Sys.file_exists dir) then
    Alcotest.failf "golden regen: directory %s not found (run under dune)" dir;
  let path = Filename.concat dir (name ^ ".json") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (golden_of_trained case trained));
  Printf.printf "regenerated %s\n" path

let check_against_golden case trained =
  let name, _, _, _ = case in
  let dir =
    match read_dir () with
    | Some d -> d
    | None -> Alcotest.failf "golden directory not found from %s" (Sys.getcwd ())
  in
  let path = Filename.concat dir (name ^ ".json") in
  if not (Sys.file_exists path) then
    Alcotest.failf "%s missing - regenerate with PSM_REGEN_GOLDEN=1 dune runtest"
      path;
  let g = J.of_file path in
  let psm = trained.Flow.optimized in
  let check_count what expected actual =
    Alcotest.(check int) (name ^ " " ^ what) expected actual
  in
  check_count "machines" (J.to_int (J.member "machines" g)) (Psm.machine_count psm);
  check_count "states" (J.to_int (J.member "states" g)) (Psm.state_count psm);
  check_count "transitions"
    (J.to_int (J.member "transitions" g))
    (Psm.transition_count psm);
  check_count "initials"
    (J.to_int (J.member "initials" g))
    (List.length (Psm.initial psm));
  check_count "props"
    (J.to_int (J.member "props" g))
    (Psm_mining.Prop_trace.Table.prop_count trained.Flow.table);
  check_count "raw states"
    (J.to_int (J.member "raw_states" g))
    (Psm.state_count trained.Flow.raw);
  let golden_attrs = J.to_list (J.member "attrs" g) in
  let states = sorted_states psm in
  check_count "attr rows" (List.length golden_attrs) (List.length states);
  let close what expected actual =
    let bound = tolerance *. Float.max 1e-30 (abs_float expected) in
    if abs_float (expected -. actual) > bound then
      Alcotest.failf "%s %s: golden %.17g, got %.17g (tolerance %.1e relative)"
        name what expected actual tolerance
  in
  List.iter2
    (fun ga (s : Psm.state) ->
      let id = J.to_int (J.member "id" ga) in
      Alcotest.(check int) (Printf.sprintf "%s state id" name) id s.Psm.id;
      let label what = Printf.sprintf "state %d %s" id what in
      close (label "mu") (J.to_float (J.member "mu" ga)) s.Psm.attr.Power_attr.mu;
      close (label "sigma")
        (J.to_float (J.member "sigma" ga))
        s.Psm.attr.Power_attr.sigma;
      Alcotest.(check int) (Printf.sprintf "%s %s" name (label "n"))
        (J.to_int (J.member "n" ga))
        s.Psm.attr.Power_attr.n)
    golden_attrs states

let run_case case () =
  let trained = train case in
  if regen_requested () then regen case trained
  else check_against_golden case trained

(* The golden file must also stay in sync with itself: a truncated or
   hand-edited baseline should fail loudly, not silently pass. *)
let test_golden_files_well_formed () =
  match read_dir () with
  | None -> Alcotest.failf "golden directory not found from %s" (Sys.getcwd ())
  | Some dir ->
      List.iter
        (fun (name, _, _, _) ->
          let path = Filename.concat dir (name ^ ".json") in
          if Sys.file_exists path then begin
            let g = J.of_file path in
            Alcotest.(check string)
              (name ^ " golden names its IP")
              name
              (J.to_string (J.member "ip" g));
            let states = J.to_int (J.member "states" g) in
            Alcotest.(check int)
              (name ^ " one attr row per state")
              states
              (List.length (J.to_list (J.member "attrs" g)))
          end)
        cases

let suite =
  ( "golden",
    Alcotest.test_case "golden files well-formed" `Quick
      test_golden_files_well_formed
    :: List.map
         (fun ((name, _, _, _) as case) ->
           Alcotest.test_case (name ^ " matches golden") `Slow (run_case case))
         cases )
