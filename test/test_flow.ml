(* Integration tests: the end-to-end flow of paper Fig. 1 on the benchmark
   IPs (reduced lengths), the experiment harness and the report
   renderer. *)

module Flow = Psm_flow.Flow
module Experiment = Psm_flow.Experiment
module Report = Psm_flow.Report
module Workloads = Psm_ips.Workloads
module Psm = Psm_core.Psm
module Table = Psm_mining.Prop_trace.Table

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let train_small name ip =
  let suite = Workloads.suite ~parts:3 ~total_length:9000 ~long:false name in
  Flow.train_on_ip ip suite

(* ---------- end-to-end per IP ---------- *)

let flow_case name make ~max_states ~max_mre =
  let ip = make () in
  let trained = train_small name ip in
  let psm = trained.Flow.optimized in
  check_bool "has states" true (Psm.state_count psm >= 2);
  check_bool
    (Printf.sprintf "compact (%d states)" (Psm.state_count psm))
    true
    (Psm.state_count psm <= max_states);
  check_bool "initials recorded" true (List.length (Psm.initial psm) = 3);
  let long = Workloads.long_for ~length:20000 name in
  let report, result = Flow.evaluate_on_ip trained ip long in
  check_bool
    (Printf.sprintf "MRE %.1f%% within band %.1f%%" (100. *. report.Psm_hmm.Accuracy.mre)
       (100. *. max_mre))
    true
    (report.Psm_hmm.Accuracy.mre <= max_mre);
  check_bool "wsp sane" true (result.Psm_hmm.Multi_sim.wsp <= 0.5)

let test_flow_ram () = flow_case "RAM" Psm_ips.Ram.create ~max_states:12 ~max_mre:0.06
let test_flow_multsum () = flow_case "MultSum" Psm_ips.Multsum.create ~max_states:8 ~max_mre:0.12
let test_flow_aes () = flow_case "AES" Psm_ips.Aes.create ~max_states:12 ~max_mre:0.10

let test_flow_camellia_band () =
  (* Camellia is the inaccurate one — and must stay that way (it is the
     paper's key negative result). *)
  let ip = Psm_ips.Camellia.create () in
  let trained = train_small "Camellia" ip in
  let long = Workloads.long_for ~length:20000 "Camellia" in
  let report, _ = Flow.evaluate_on_ip trained ip long in
  check_bool "high MRE" true (report.Psm_hmm.Accuracy.mre >= 0.15);
  check_bool "not absurd" true (report.Psm_hmm.Accuracy.mre <= 0.60)

let test_flow_ordering_matches_paper () =
  (* The paper's accuracy ordering: RAM best, AES/MultSum close, Camellia
     far worst. *)
  let mre name make =
    let ip = make () in
    let trained = train_small name ip in
    let long = Workloads.long_for ~length:15000 name in
    let report, _ = Flow.evaluate_on_ip trained ip long in
    report.Psm_hmm.Accuracy.mre
  in
  let ram = mre "RAM" Psm_ips.Ram.create in
  let camellia = mre "Camellia" Psm_ips.Camellia.create in
  let aes = mre "AES" Psm_ips.Aes.create in
  check_bool "RAM < AES" true (ram < aes);
  check_bool "AES << Camellia" true (aes *. 3. < camellia)

let test_flow_timings_populated () =
  let ip = Psm_ips.Multsum.create () in
  let trained = train_small "MultSum" ip in
  check_bool "timings non-negative" true
    (trained.Flow.timings.Flow.mine_s >= 0.
    && trained.Flow.timings.Flow.generate_s >= 0.
    && trained.Flow.timings.Flow.combine_s >= 0.);
  check_bool "total is the sum" true
    (abs_float
       (Flow.total_generation_s trained.Flow.timings
       -. (trained.Flow.timings.Flow.mine_s +. trained.Flow.timings.Flow.generate_s
          +. trained.Flow.timings.Flow.combine_s))
    < 1e-12)

let test_flow_validates_inputs () =
  check_bool "empty traces" true
    (try
       ignore (Flow.train ~traces:[] ~powers:[] ());
       false
     with Invalid_argument _ -> true)

let test_split_stimulus () =
  let stim = Workloads.ram_short ~length:1000 () in
  let parts = Flow.split_stimulus stim ~parts:3 in
  check_int "3 parts" 3 (List.length parts);
  check_int "lengths sum" 1000 (List.fold_left (fun a p -> a + Array.length p) 0 parts)

let test_split_stimulus_edges () =
  (* More parts than samples: min n parts single-sample chunks, never an
     empty chunk and never one unsplittable blob. *)
  let stim = Array.sub (Workloads.ram_short ~length:100 ()) 0 2 in
  let parts = Flow.split_stimulus stim ~parts:5 in
  check_int "clamped to n parts" 2 (List.length parts);
  List.iter (fun p -> check_int "single-sample chunk" 1 (Array.length p)) parts;
  check_int "one part passthrough" 1 (List.length (Flow.split_stimulus stim ~parts:1));
  (* The empty stimulus keeps its single empty chunk. *)
  (match Flow.split_stimulus [||] ~parts:4 with
  | [ [||] ] -> ()
  | _ -> Alcotest.fail "empty stimulus must yield one empty chunk");
  check_bool "zero parts rejected" true
    (try
       ignore (Flow.split_stimulus stim ~parts:0);
       false
     with Invalid_argument _ -> true)

let test_cosim_runs () =
  let ip = Psm_ips.Multsum.create () in
  let trained = train_small "MultSum" ip in
  let seconds = Flow.cosim_timed trained ip (Workloads.multsum_long ~length:2000 ()) in
  check_bool "positive time" true (seconds > 0.)

(* ---------- experiment harness ---------- *)

let test_fig3_example () =
  let fig3 = Experiment.fig3_example () in
  let segments = Psm_mining.Prop_trace.segments fig3.Experiment.gamma in
  Alcotest.(check (list (triple int int int)))
    "paper segmentation"
    [ (0, 0, 2); (1, 3, 5); (2, 6, 6); (3, 7, 7) ]
    segments

let test_fig5_psm () =
  let fig3 = Experiment.fig3_example () in
  let psm = Experiment.fig5_psm fig3 in
  check_int "3 states" 3 (Psm.state_count psm);
  check_int "2 transitions" 2 (Psm.transition_count psm);
  (* The final state covers the trailing instant: ⟨p_c X p_d, 6, 7⟩. *)
  let last = List.nth (Psm.states psm) 2 in
  check_int "n = 2" 2 last.Psm.attr.Psm_core.Power_attr.n

let test_fig2_psm () =
  let psm = Experiment.fig2_psm () in
  check_int "3 states" 3 (Psm.state_count psm);
  check_int "4 transitions" 4 (Psm.transition_count psm);
  let dot = Psm_core.Dot.to_string psm in
  check_bool "renders" true (String.length dot > 100)

let test_table1_shape () =
  let rows = Experiment.table1 () in
  check_int "4 IPs" 4 (List.length rows);
  let ram = List.hd rows in
  check_int "RAM PIs" 44 ram.Experiment.pi_bits;
  check_int "RAM POs" 32 ram.Experiment.po_bits;
  check_bool "RAM memory elements >= 8192" true (ram.Experiment.memory_elements >= 8192);
  List.iter
    (fun r -> check_bool "positive memory" true (r.Experiment.memory_elements > 0))
    rows

let test_table2_row_shape () =
  let spec = List.nth Experiment.benchmark_ips 1 (* MultSum *) in
  let row = Experiment.table2_row ~total_length:6000 ~long:false spec in
  check_int "ts recorded" 6000 row.Experiment.ts;
  check_bool "states sane" true (row.Experiment.states >= 2 && row.Experiment.states <= 10);
  check_bool "transitions sane" true (row.Experiment.transitions >= 1);
  check_bool "mre sane" true (row.Experiment.mre >= 0. && row.Experiment.mre < 0.5);
  check_bool "times recorded" true (row.Experiment.px_s >= 0. && row.Experiment.gen_s >= 0.)

let test_table3_row_shape () =
  let spec = List.hd Experiment.benchmark_ips (* RAM *) in
  let row = Experiment.table3_row ~eval_length:8000 spec in
  check_bool "ip sim time" true (row.Experiment.ip_sim_s > 0.);
  check_bool "cosim costs more" true (row.Experiment.ip_psm_s >= row.Experiment.ip_sim_s *. 0.5);
  check_bool "mre recorded" true (row.Experiment.t3_mre >= 0.)

(* ---------- coverage diagnostics ---------- *)

let test_coverage_full_on_training () =
  let ip = Psm_ips.Multsum.create () in
  let trained = train_small "MultSum" ip in
  let stim = Workloads.multsum_long ~length:8000 () in
  let trace, _ = Psm_ips.Capture.run ip stim in
  let report = Psm_flow.Coverage.of_trace trained.Flow.hmm trace in
  Alcotest.(check (float 1e-9)) "all rows known" 1. report.Psm_flow.Coverage.known_fraction;
  check_bool "visits most states" true
    (report.Psm_flow.Coverage.states_visited >= report.Psm_flow.Coverage.states_total - 1)

let test_coverage_flags_unknown_behaviour () =
  (* Train AES encrypt-only; decryption blocks produce unknown rows. *)
  let ip = Psm_ips.Aes.create () in
  let suite =
    Workloads.suite ~parts:2 ~total_length:6000 ~long:false "AES"
    |> List.map
         (Array.map (fun sample ->
              let sample = Array.copy sample in
              sample.(3) <- Psm_bits.Bits.zero 1;
              sample))
  in
  let trained = Flow.train_on_ip ip suite in
  let long = Workloads.aes_long ~length:6000 () in
  let trace, _ = Psm_ips.Capture.run ip long in
  let report = Psm_flow.Coverage.of_trace trained.Flow.hmm trace in
  check_bool "unknown rows found" true (report.Psm_flow.Coverage.known_fraction < 0.9);
  check_bool "samples reported" true (report.Psm_flow.Coverage.unknown_row_samples <> []);
  let text = Format.asprintf "%a" Psm_flow.Coverage.pp report in
  check_bool "report renders" true (String.length text > 40)

(* ---------- plot artifacts ---------- *)

let test_plot_artifacts () =
  let ip = Psm_ips.Multsum.create () in
  let trained = train_small "MultSum" ip in
  let stim = Workloads.multsum_long ~length:500 () in
  let trace, reference = Psm_ips.Capture.run ip stim in
  let result = Psm_hmm.Multi_sim.simulate trained.Flow.hmm trace in
  let dat = Psm_flow.Plot.data_string ~reference ~result in
  let lines = String.split_on_char '\n' dat |> List.filter (fun l -> l <> "") in
  check_int "header + one line per instant" 501 (List.length lines);
  let gp = Psm_flow.Plot.script_string ~basename:"x" ~title:"t" in
  check_bool "script mentions dat" true
    (let needle = "x.dat" in
     let n = String.length needle and h = String.length gp in
     let rec go i = i + n <= h && (String.sub gp i n = needle || go (i + 1)) in
     go 0)

(* ---------- report rendering ---------- *)

let test_render_table_alignment () =
  let rendered =
    Report.render_table ~header:[ "A"; "BB" ] [ [ "xxx"; "1" ]; [ "y"; "22" ] ]
  in
  let lines = String.split_on_char '\n' rendered |> List.filter (fun l -> l <> "") in
  check_int "4 lines" 4 (List.length lines);
  (* All lines equally wide. *)
  let widths = List.map String.length lines in
  check_bool "aligned" true (List.for_all (fun w -> w = List.hd widths) widths)

let test_percent_seconds () =
  Alcotest.(check string) "percent" "12.34%" (Report.percent 0.12341);
  Alcotest.(check string) "seconds" "1.50" (Report.seconds 1.499999)

let suite =
  ( "flow",
    [ Alcotest.test_case "RAM end-to-end" `Slow test_flow_ram;
      Alcotest.test_case "MultSum end-to-end" `Slow test_flow_multsum;
      Alcotest.test_case "AES end-to-end" `Slow test_flow_aes;
      Alcotest.test_case "Camellia stays inaccurate" `Slow test_flow_camellia_band;
      Alcotest.test_case "accuracy ordering" `Slow test_flow_ordering_matches_paper;
      Alcotest.test_case "timings" `Quick test_flow_timings_populated;
      Alcotest.test_case "input validation" `Quick test_flow_validates_inputs;
      Alcotest.test_case "split stimulus" `Quick test_split_stimulus;
      Alcotest.test_case "split stimulus edge cases" `Quick test_split_stimulus_edges;
      Alcotest.test_case "cosim" `Quick test_cosim_runs;
      Alcotest.test_case "Fig.3 example" `Quick test_fig3_example;
      Alcotest.test_case "Fig.5 PSM" `Quick test_fig5_psm;
      Alcotest.test_case "Fig.2 PSM" `Quick test_fig2_psm;
      Alcotest.test_case "Table I shape" `Quick test_table1_shape;
      Alcotest.test_case "Table II row" `Slow test_table2_row_shape;
      Alcotest.test_case "Table III row" `Slow test_table3_row_shape;
      Alcotest.test_case "coverage on training" `Quick test_coverage_full_on_training;
      Alcotest.test_case "coverage flags unknowns" `Slow test_coverage_flags_unknown_behaviour;
      Alcotest.test_case "plot artifacts" `Quick test_plot_artifacts;
      Alcotest.test_case "table rendering" `Quick test_render_table_alignment;
      Alcotest.test_case "formatting" `Quick test_percent_seconds ] )
