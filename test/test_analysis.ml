(* Tests for the static model-checking subsystem (Psm_analysis): clean
   trained models lint clean, seeded corruptions yield the expected
   findings in text and JSON, the full pipeline is lint-clean as a QCheck
   invariant, and persisted models stay lint-clean across a round-trip. *)

module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface
module FT = Psm_trace.Functional_trace
module Power_trace = Psm_trace.Power_trace
module Atomic = Psm_mining.Atomic
module Vocabulary = Psm_mining.Vocabulary
module Miner = Psm_mining.Miner
module Prop_trace = Psm_mining.Prop_trace
module Table = Prop_trace.Table
module Assertion = Psm_core.Assertion
module Power_attr = Psm_core.Power_attr
module Psm = Psm_core.Psm
module Hmm = Psm_hmm.Hmm
module Flow = Psm_flow.Flow
module Persist = Psm_flow.Persist
module Workloads = Psm_ips.Workloads
module Finding = Psm_analysis.Finding
module Rule = Psm_analysis.Rule
module Rules_hmm = Psm_analysis.Rules_hmm
module Analyzer = Psm_analysis.Analyzer
module Report = Psm_analysis.Report

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let errors_of findings = List.length (Finding.errors findings)

let has ~rule ~severity findings =
  List.exists
    (fun (f : Finding.t) -> f.Finding.rule = rule && f.Finding.severity = severity)
    findings

let has_at ~rule ~severity ~location findings =
  List.exists
    (fun (f : Finding.t) ->
      f.Finding.rule = rule
      && f.Finding.severity = severity
      && f.Finding.location = location)
    findings

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---------- a tiny hand-built world over one 1-bit signal ---------- *)

let tiny_table () =
  let iface = Interface.create [ Signal.input "a" 1 ] in
  let vocabulary = Vocabulary.create iface [ Atomic.eq_const 0 (Bits.of_bool true) ] in
  let table = Table.create vocabulary in
  let p_hi = Table.intern_row table [| true |] in
  let p_lo = Table.intern_row table [| false |] in
  (iface, table, p_hi, p_lo)

let attr ?(sigma = 0.) ~mu ~trace ~start ~stop () =
  { Power_attr.mu;
    sigma;
    n = stop - start + 1;
    intervals = [ { Power_attr.trace; start; stop } ] }

(* ---------- clean trained models ---------- *)

let test_trained_model_clean () =
  let ip = Psm_ips.Ram.create () in
  let suite = Workloads.suite ~parts:3 ~total_length:9000 ~long:false "RAM" in
  let trained = Flow.train_on_ip ip suite in
  check_int "no errors recorded at train time" 0 (errors_of trained.Flow.analysis);
  let relint = Flow.lint trained in
  check_int "re-lint agrees" 0 (errors_of relint);
  check_bool "analyze time recorded" true (trained.Flow.timings.Flow.analyze_s >= 0.)

let test_trained_model_clean_all_ips () =
  List.iter
    (fun (name, make) ->
      let ip : Psm_ips.Ip.t = make () in
      let suite = Workloads.suite ~parts:3 ~total_length:6000 ~long:false name in
      let trained = Flow.train_on_ip ip suite in
      check_int (name ^ " lints without errors") 0 (errors_of trained.Flow.analysis))
    [ ("MultSum", Psm_ips.Multsum.create);
      ("AES", Psm_ips.Aes.create);
      ("FIFO", Psm_ips.Fifo.create) ]

(* ---------- seeded corruptions ---------- *)

let corrupted_model () =
  (* s0 --p_lo--> s1 and s0 --p_lo--> s2: overlapping guards (the same
     proposition enables two transitions); s1 carries sigma < 0; s3 is
     unreachable. *)
  let _iface, table, p_hi, p_lo = tiny_table () in
  let psm = Psm.empty table in
  let psm, s0 =
    Psm.add_state psm (Assertion.Until (p_hi, p_lo)) (attr ~mu:1. ~trace:0 ~start:0 ~stop:3 ())
  in
  let psm, s1 =
    Psm.add_state psm
      (Assertion.Until (p_lo, p_hi))
      { (attr ~mu:2. ~trace:0 ~start:4 ~stop:7 ()) with Power_attr.sigma = -0.5 }
  in
  let psm, s2 =
    Psm.add_state psm (Assertion.Next (p_lo, p_hi)) (attr ~mu:3. ~trace:0 ~start:8 ~stop:8 ())
  in
  let psm, s3 =
    Psm.add_state psm (Assertion.Next (p_hi, p_lo)) (attr ~mu:4. ~trace:1 ~start:0 ~stop:0 ())
  in
  let psm = Psm.add_transition psm ~src:s0 ~guard:p_lo ~dst:s1 in
  let psm = Psm.add_transition psm ~src:s0 ~guard:p_lo ~dst:s2 in
  let psm = Psm.add_initial psm s0 in
  (psm, s0, s1, s2, s3)

let test_corrupted_psm_findings () =
  let psm, _, s1, _, s3 = corrupted_model () in
  let findings = Analyzer.analyze psm in
  check_bool "overlapping guards -> determinism warning" true
    (has ~rule:"determinism" ~severity:Finding.Warning findings);
  check_bool "sigma < 0 -> attr-sanity error" true
    (has_at ~rule:"attr-sanity" ~severity:Finding.Error ~location:(Finding.State s1)
       findings);
  check_bool "unreachable state -> reachability warning" true
    (has_at ~rule:"reachability" ~severity:Finding.Warning ~location:(Finding.State s3)
       findings);
  (* Reporters carry the same findings. *)
  let text = Report.text findings in
  check_bool "text mentions attr-sanity" true (contains text "attr-sanity");
  check_bool "text mentions the negative sigma" true (contains text "negative");
  let json = Report.json findings in
  check_bool "json has error severity" true (contains json "\"severity\":\"error\"");
  check_bool "json has state location" true (contains json "{\"kind\":\"state\"")

let test_corrupted_hmm_findings () =
  (* A clean two-state machine whose A matrix is then corrupted in place:
     the row no longer sums to 1. *)
  let _iface, table, p_hi, p_lo = tiny_table () in
  let psm = Psm.empty table in
  let psm, s0 =
    Psm.add_state psm (Assertion.Until (p_hi, p_lo)) (attr ~mu:1. ~trace:0 ~start:0 ~stop:3 ())
  in
  let psm, s1 =
    Psm.add_state psm (Assertion.Until (p_lo, p_hi)) (attr ~mu:2. ~trace:0 ~start:4 ~stop:7 ())
  in
  let psm = Psm.add_transition psm ~src:s0 ~guard:p_lo ~dst:s1 in
  let psm = Psm.add_transition psm ~src:s1 ~guard:p_hi ~dst:s0 in
  let psm = Psm.add_initial psm s0 in
  let hmm = Hmm.build psm in
  check_int "clean HMM lints clean" 0 (errors_of (Analyzer.analyze ~hmm psm));
  Hmm.unsafe_set_a hmm ~row:0 ~col:1 5.;
  let findings = Analyzer.analyze ~hmm psm in
  check_bool "non-stochastic A row -> hmm-stochastic error" true
    (has ~rule:"hmm-stochastic" ~severity:Finding.Error findings);
  let json = Report.json findings in
  check_bool "json locates the hmm row" true
    (contains json "{\"kind\":\"hmm-row\",\"row\":0}")

let test_stochastic_row_primitive () =
  let row what values =
    Rules_hmm.check_stochastic_row ~eps:1e-6 ~location:Finding.Model ~what values
  in
  check_bool "sum != 1 is an error" true (Finding.errors (row "A[0]" [| 0.7; 0.7 |]) <> []);
  check_bool "NaN is an error" true (Finding.errors (row "r" [| Float.nan; 1. |]) <> []);
  check_bool "negative mass is an error" true
    (Finding.errors (row "r" [| -0.5; 1.5 |]) <> []);
  let zero = row "r" [| 0.; 0. |] in
  check_bool "all-zero row is a warning, not an error" true
    (Finding.errors zero = [] && zero <> []);
  check_int "clean row" 0 (List.length (row "r" [| 0.25; 0.75 |]))

(* ---------- stall and conservation need the training context ---------- *)

let stall_world () =
  (* Γ = p_hi p_hi p_lo over trace [1;1;0]: s0 active on [0..1], then the
     run continues with p_lo. *)
  let iface, table, p_hi, p_lo = tiny_table () in
  let trace =
    FT.of_samples iface
      [| [| Bits.of_bool true |]; [| Bits.of_bool true |]; [| Bits.of_bool false |] |]
  in
  let gamma = Prop_trace.of_functional table trace in
  let power = Power_trace.of_array [| 1.; 1.; 3. |] in
  (table, p_hi, p_lo, gamma, power)

let test_stall_detection () =
  let table, p_hi, p_lo, gamma, power = stall_world () in
  let psm = Psm.empty table in
  let psm, s0 =
    Psm.add_state psm (Assertion.Until (p_hi, p_lo))
      (attr ~mu:1. ~trace:0 ~start:0 ~stop:1 ())
  in
  let psm, s1 =
    Psm.add_state psm (Assertion.Until (p_lo, p_lo))
      (attr ~mu:3. ~trace:0 ~start:2 ~stop:2 ())
  in
  let psm = Psm.add_initial psm s0 in
  let covered = Psm.add_transition psm ~src:s0 ~guard:p_lo ~dst:s1 in
  let gammas = [| gamma |] and powers = [| power |] in
  check_int "guarded continuation lints clean" 0
    (errors_of (Analyzer.analyze ~gammas ~powers covered));
  (* Without the transition, s0 stalls: the training run continues with
     p_lo but no guard covers it. *)
  let findings = Analyzer.analyze ~gammas ~powers psm in
  check_bool "stall error on s0" true
    (has_at ~rule:"stall" ~severity:Finding.Error ~location:(Finding.State s0) findings)

let test_conservation_detection () =
  let table, p_hi, p_lo, gamma, power = stall_world () in
  let psm = Psm.empty table in
  let psm, s0 =
    Psm.add_state psm (Assertion.Until (p_hi, p_lo))
      (attr ~mu:1. ~trace:0 ~start:0 ~stop:1 ())
  in
  let psm, s1 =
    Psm.add_state psm (Assertion.Until (p_lo, p_lo))
      (* Claims instant 2 (power 3.0) but records mu = 2.5. *)
      (attr ~mu:2.5 ~trace:0 ~start:2 ~stop:2 ())
  in
  let psm = Psm.add_transition psm ~src:s0 ~guard:p_lo ~dst:s1 in
  let psm = Psm.add_initial psm s0 in
  let findings = Analyzer.analyze ~gammas:[| gamma |] ~powers:[| power |] psm in
  check_bool "mu mismatch -> conservation error on s1" true
    (has_at ~rule:"conservation" ~severity:Finding.Error ~location:(Finding.State s1)
       findings)

let test_coverage_gap_detection () =
  let table, p_hi, _p_lo, gamma, power = stall_world () in
  let psm = Psm.empty table in
  (* Only instants [0..1] are claimed; instant 2 belongs to no state. *)
  let psm, s0 =
    Psm.add_state psm (Assertion.Until (p_hi, p_hi))
      (attr ~mu:1. ~trace:0 ~start:0 ~stop:1 ())
  in
  let psm = Psm.add_initial psm s0 in
  ignore s0;
  let findings = Analyzer.analyze ~gammas:[| gamma |] ~powers:[| power |] psm in
  check_bool "gap -> conservation error at model" true
    (has_at ~rule:"conservation" ~severity:Finding.Error ~location:Finding.Model findings)

(* ---------- analyzer mechanics ---------- *)

let test_strict_mode_raises () =
  let psm, _, _, _, _ = corrupted_model () in
  let config = { Analyzer.default with Analyzer.strict = true } in
  match Analyzer.analyze ~config psm with
  | _ -> Alcotest.fail "strict mode did not raise"
  | exception Analyzer.Strict_failure errors ->
      check_bool "carries only errors" true
        (errors <> []
        && List.for_all
             (fun (f : Finding.t) -> f.Finding.severity = Finding.Error)
             errors)

let test_rule_selection () =
  let psm, _, _, _, _ = corrupted_model () in
  let config = { Analyzer.default with Analyzer.rules = Some [ "reachability" ] } in
  let findings = Analyzer.analyze ~config psm in
  check_bool "only the selected rule fires" true
    (findings <> []
    && List.for_all (fun (f : Finding.t) -> f.Finding.rule = "reachability") findings);
  match Analyzer.analyze ~config:{ config with Analyzer.rules = Some [ "no-such" ] } psm with
  | _ -> Alcotest.fail "unknown rule accepted"
  | exception Invalid_argument _ -> ()

let test_registry_lists_builtins () =
  let names = List.map (fun (r : Rule.t) -> r.Rule.name) (Analyzer.rules ()) in
  List.iter
    (fun expected -> check_bool ("registry has " ^ expected) true (List.mem expected names))
    [ "determinism"; "reachability"; "stall"; "attr-sanity"; "conservation";
      "hmm-consistency"; "hmm-stochastic"; "hmm-emission";
      "static-feasibility"; "static-disjointness"; "static-coverage";
      "static-vacuity" ]

(* ---------- the parallel analyzer is deterministic ---------- *)

let with_jobs jobs f =
  let saved = Psm_par.default_jobs () in
  Psm_par.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Psm_par.set_jobs saved) f

let test_parallel_report_identical () =
  (* A findings-rich run: structural corruptions, a corrupted HMM and the
     training-context rules (stall/conservation) all firing at once. The
     analyzer fans rules out across the Psm_par pool; the report must be
     byte-identical whatever the pool width. *)
  let runs () =
    let structural =
      let psm, _, _, _, _ = corrupted_model () in
      let hmm = Hmm.build psm in
      Hmm.unsafe_set_a hmm ~row:0 ~col:1 5.;
      Analyzer.analyze ~hmm psm
    in
    let contextual =
      let table, p_hi, p_lo, gamma, power = stall_world () in
      let psm = Psm.empty table in
      let psm, _s0 =
        Psm.add_state psm (Assertion.Until (p_hi, p_lo))
          (attr ~mu:1. ~trace:0 ~start:0 ~stop:1 ())
      in
      let psm, _s1 =
        Psm.add_state psm (Assertion.Until (p_lo, p_lo))
          (attr ~mu:2.5 ~trace:0 ~start:2 ~stop:2 ())
      in
      let psm = Psm.add_initial psm _s0 in
      Analyzer.analyze ~gammas:[| gamma |] ~powers:[| power |] psm
    in
    (structural, contextual)
  in
  let seq_structural, seq_contextual = with_jobs 1 runs in
  let par_structural, par_contextual = with_jobs 4 runs in
  check_bool "structural findings rich" true (List.length seq_structural > 3);
  check_bool "contextual findings present" true (seq_contextual <> []);
  check_bool "structural findings identical" true (seq_structural = par_structural);
  check_bool "contextual findings identical" true (seq_contextual = par_contextual);
  Alcotest.(check string) "text report byte-identical"
    (Report.text seq_structural) (Report.text par_structural);
  Alcotest.(check string) "json report byte-identical"
    (Report.json (seq_structural @ seq_contextual))
    (Report.json (par_structural @ par_contextual))

(* ---------- persistence round-trip stays lint-clean ---------- *)

let test_persist_roundtrip_lint_clean () =
  let ip = Psm_ips.Ram.create () in
  let suite = Workloads.suite ~parts:3 ~total_length:9000 ~long:false "RAM" in
  let trained = Flow.train_on_ip ip suite in
  check_int "clean before save" 0 (errors_of trained.Flow.analysis);
  let model = Persist.load (Persist.save trained) in
  let findings = Analyzer.analyze ~hmm:model.Persist.hmm model.Persist.psm in
  check_int "clean after save + load" 0 (errors_of findings)

(* ---------- the pipeline invariant, as a QCheck property ---------- *)

let arb_training_set =
  let gen =
    QCheck.Gen.(
      let iface =
        Interface.create
          [ Signal.input "a" 1; Signal.input "b" 4; Signal.output "c" 4 ]
      in
      let trace_gen =
        let* n = int_range 40 120 in
        let* samples =
          list_size (return n)
            (map2
               (fun a b ->
                 [| Bits.of_bool a;
                    Bits.of_int ~width:4 (b land 15);
                    Bits.of_int ~width:4 ((b * 3) land 15) |])
               bool (int_bound 20))
        in
        let functional = FT.of_samples iface (Array.of_list samples) in
        let* powers =
          list_size (return n) (map (fun p -> float_of_int p /. 7.) (int_bound 50))
        in
        return (functional, Power_trace.of_array (Array.of_list powers))
      in
      let* traces = int_range 1 3 in
      list_size (return traces) trace_gen)
  in
  QCheck.make gen

let lax_flow_config =
  { Flow.default with
    Flow.miner =
      { Miner.default with
        Miner.min_support = 0.02;
        min_mean_run = 1.;
        max_short_run_fraction = 1.0 } }

let pipeline_lint_clean training =
  let traces = List.map fst training and powers = List.map snd training in
  let trained = Flow.train ~config:lax_flow_config ~traces ~powers () in
  Finding.errors trained.Flow.analysis = []

let properties =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:20 ~name:"train->simplify->join->hmm is lint-clean"
         arb_training_set pipeline_lint_clean) ]

let suite =
  ( "analysis",
    [ Alcotest.test_case "trained RAM model is clean" `Quick test_trained_model_clean;
      Alcotest.test_case "other IPs are clean" `Quick test_trained_model_clean_all_ips;
      Alcotest.test_case "corrupted PSM findings" `Quick test_corrupted_psm_findings;
      Alcotest.test_case "corrupted HMM findings" `Quick test_corrupted_hmm_findings;
      Alcotest.test_case "stochastic row primitive" `Quick test_stochastic_row_primitive;
      Alcotest.test_case "stall detection" `Quick test_stall_detection;
      Alcotest.test_case "conservation detection" `Quick test_conservation_detection;
      Alcotest.test_case "coverage gap detection" `Quick test_coverage_gap_detection;
      Alcotest.test_case "strict mode raises" `Quick test_strict_mode_raises;
      Alcotest.test_case "rule selection" `Quick test_rule_selection;
      Alcotest.test_case "registry lists builtins" `Quick test_registry_lists_builtins;
      Alcotest.test_case "parallel report identical" `Quick test_parallel_report_identical;
      Alcotest.test_case "persist round-trip stays clean" `Quick
        test_persist_roundtrip_lint_clean ]
    @ properties )
