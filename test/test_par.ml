(* Tests for Psm_par — the domain pool behind the parallel mining and
   experiment fan-outs — and for the determinism guarantee: parallel
   vocabulary mining and proposition-trace classification must produce
   exactly the sequential results. *)

module Par = Psm_par
module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface
module FT = Psm_trace.Functional_trace
module Atomic = Psm_mining.Atomic
module Vocabulary = Psm_mining.Vocabulary
module Miner = Psm_mining.Miner
module Prop_trace = Psm_mining.Prop_trace
module Table = Prop_trace.Table

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A shared wide pool: the machine may have a single core, but domains
   still interleave, which is exactly what the determinism tests need. *)
let pool4 = lazy (Par.Pool.create ~jobs:4)
let pool1 = lazy (Par.Pool.create ~jobs:1)

(* ---------- pool mechanics ---------- *)

let test_map_order () =
  let xs = List.init 500 Fun.id in
  Alcotest.(check (list int))
    "ordered" (List.map (fun x -> x * x) xs)
    (Par.parallel_map ~pool:(Lazy.force pool4) (fun x -> x * x) xs)

let test_map_array_order () =
  let xs = Array.init 1000 (fun i -> 1000 - i) in
  Alcotest.(check (array int))
    "ordered" (Array.map (fun x -> x + 7) xs)
    (Par.parallel_map_array ~pool:(Lazy.force pool4) (fun x -> x + 7) xs)

let test_jobs1_equals_sequential () =
  let xs = List.init 200 (fun i -> i * 3) in
  Alcotest.(check (list int))
    "jobs=1" (List.map succ xs)
    (Par.parallel_map ~pool:(Lazy.force pool1) succ xs)

let test_exception_propagation () =
  Alcotest.check_raises "lowest-index exception" (Failure "boom 37") (fun () ->
      ignore
        (Par.parallel_map ~pool:(Lazy.force pool4)
           (fun x ->
             if x = 37 || x = 101 then failwith (Printf.sprintf "boom %d" x) else x)
           (List.init 200 Fun.id)))

let test_exception_leaves_pool_usable () =
  let pool = Lazy.force pool4 in
  (try
     ignore (Par.parallel_map ~pool (fun _ -> failwith "die") (List.init 50 Fun.id))
   with Failure _ -> ());
  Alcotest.(check (list int))
    "pool survives" [ 2; 4; 6 ]
    (Par.parallel_map ~pool (fun x -> 2 * x) [ 1; 2; 3 ])

let test_pool_lifecycle () =
  let pool = Par.Pool.create ~jobs:3 in
  check_int "jobs" 3 (Par.Pool.jobs pool);
  Alcotest.(check (list int))
    "usable" [ 1; 4; 9; 16 ]
    (Par.parallel_map ~pool (fun x -> x * x) [ 1; 2; 3; 4 ]);
  Par.Pool.shutdown pool;
  Par.Pool.shutdown pool;
  (* Idempotent. *)
  Alcotest.check_raises "dead pool rejected"
    (Invalid_argument "Psm_par.Pool: pool is shut down") (fun () ->
      ignore (Par.parallel_map ~pool (fun x -> x) (List.init 10 Fun.id)))

let test_nested_calls () =
  (* Nested parallel calls from worker tasks run sequentially instead of
     deadlocking; the fan-out still returns correct ordered results. *)
  let outer = List.init 8 Fun.id in
  let expected =
    List.map (fun i -> List.fold_left ( + ) 0 (List.init 100 (fun j -> i + j))) outer
  in
  Alcotest.(check (list int))
    "nested" expected
    (Par.parallel_map ~pool:(Lazy.force pool4)
       (fun i ->
         List.fold_left ( + ) 0
           (Par.parallel_map ~pool:(Lazy.force pool4) (fun j -> i + j)
              (List.init 100 Fun.id)))
       outer)

let test_parallel_fold () =
  let xs = Array.init 1001 Fun.id in
  let sum =
    Par.parallel_fold ~pool:(Lazy.force pool4) ~chunk:7
      ~init:(fun () -> 0)
      ~fold:( + ) ~merge:( + ) xs
  in
  check_int "sum" (1000 * 1001 / 2) sum;
  let seq =
    Par.parallel_fold ~pool:(Lazy.force pool1)
      ~init:(fun () -> 0)
      ~fold:( + ) ~merge:( + ) xs
  in
  check_int "sequential path" sum seq

let test_default_jobs_env () =
  check_bool "positive" true (Par.default_jobs () >= 1)

(* ---------- determinism of the parallel mining paths ---------- *)

let arb_trace =
  let gen =
    QCheck.Gen.(
      let* n = int_range 80 220 in
      let iface =
        Interface.create
          [ Signal.input "a" 1; Signal.input "b" 4; Signal.input "c" 4;
            Signal.output "d" 4 ]
      in
      let* samples =
        list_size (return n)
          (map3
             (fun a b c ->
               [| Bits.of_bool a;
                  Bits.of_int ~width:4 (b land 15);
                  Bits.of_int ~width:4 (c land 15);
                  Bits.of_int ~width:4 ((b + c) land 15) |])
             bool (int_bound 40) (int_bound 9))
      in
      return (FT.of_samples iface (Array.of_list samples)))
  in
  QCheck.make gen

let lax_config =
  { Miner.default with
    Miner.min_support = 0.02;
    min_mean_run = 1.;
    max_short_run_fraction = 1.0 }

let prop name f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:25 ~name arb_trace f)

let properties =
  [ prop "parallel mine_vocabulary = sequential" (fun trace ->
        let seq =
          Miner.mine_vocabulary ~pool:(Lazy.force pool1) ~config:lax_config [ trace ]
        in
        let par =
          Miner.mine_vocabulary ~pool:(Lazy.force pool4) ~config:lax_config [ trace ]
        in
        let a = Vocabulary.atoms seq and b = Vocabulary.atoms par in
        Array.length a = Array.length b
        && Array.for_all2 Atomic.equal a b);
    prop "parallel candidate_stats = sequential" (fun trace ->
        let strip (s : Miner.atom_stats) =
          (s.Miner.occurrences, s.Miner.runs, s.Miner.short_runs)
        in
        let seq =
          Miner.candidate_stats ~pool:(Lazy.force pool1) ~config:lax_config [ trace ]
        in
        let par =
          Miner.candidate_stats ~pool:(Lazy.force pool4) ~config:lax_config [ trace ]
        in
        List.length seq = List.length par
        && List.for_all2
             (fun x y -> Atomic.equal x.Miner.atom y.Miner.atom && strip x = strip y)
             seq par);
    prop "parallel classification = sequential" (fun trace ->
        let vocabulary =
          Miner.mine_vocabulary ~pool:(Lazy.force pool1) ~config:lax_config [ trace ]
        in
        if Vocabulary.size vocabulary = 0 then true
        else begin
          let t_seq = Table.create vocabulary in
          let g_seq = Prop_trace.of_functional ~pool:(Lazy.force pool1) t_seq trace in
          let t_par = Table.create vocabulary in
          let g_par = Prop_trace.of_functional ~pool:(Lazy.force pool4) t_par trace in
          Prop_trace.prop_ids g_seq = Prop_trace.prop_ids g_par
          && Table.prop_count t_seq = Table.prop_count t_par
          && List.for_all
               (fun id -> Table.row t_seq id = Table.row t_par id)
               (List.init (Table.prop_count t_seq) Fun.id)
        end) ]

let suite =
  ( "par",
    [ Alcotest.test_case "map order" `Quick test_map_order;
      Alcotest.test_case "map_array order" `Quick test_map_array_order;
      Alcotest.test_case "jobs=1 sequential" `Quick test_jobs1_equals_sequential;
      Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
      Alcotest.test_case "pool survives exception" `Quick test_exception_leaves_pool_usable;
      Alcotest.test_case "pool lifecycle" `Quick test_pool_lifecycle;
      Alcotest.test_case "nested calls" `Quick test_nested_calls;
      Alcotest.test_case "parallel fold" `Quick test_parallel_fold;
      Alcotest.test_case "default jobs" `Quick test_default_jobs_env ]
    @ properties )
