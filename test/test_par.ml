(* Tests for Psm_par — the domain pool behind the parallel mining and
   experiment fan-outs — and for the determinism guarantee: parallel
   vocabulary mining and proposition-trace classification must produce
   exactly the sequential results. *)

module Par = Psm_par
module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface
module FT = Psm_trace.Functional_trace
module Atomic = Psm_mining.Atomic
module Vocabulary = Psm_mining.Vocabulary
module Miner = Psm_mining.Miner
module Prop_trace = Psm_mining.Prop_trace
module Table = Prop_trace.Table

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A shared wide pool: the machine may have a single core, but domains
   still interleave, which is exactly what the determinism tests need —
   hence [~oversubscribe:true], which bypasses the hardware clamp. *)
let pool4 = lazy (Par.Pool.create ~oversubscribe:true ~jobs:4 ())
let pool1 = lazy (Par.Pool.create ~jobs:1 ())

(* ---------- pool mechanics ---------- *)

let test_map_order () =
  let xs = List.init 500 Fun.id in
  Alcotest.(check (list int))
    "ordered" (List.map (fun x -> x * x) xs)
    (Par.parallel_map ~pool:(Lazy.force pool4) (fun x -> x * x) xs)

let test_map_array_order () =
  let xs = Array.init 1000 (fun i -> 1000 - i) in
  Alcotest.(check (array int))
    "ordered" (Array.map (fun x -> x + 7) xs)
    (Par.parallel_map_array ~pool:(Lazy.force pool4) (fun x -> x + 7) xs)

let test_jobs1_equals_sequential () =
  let xs = List.init 200 (fun i -> i * 3) in
  Alcotest.(check (list int))
    "jobs=1" (List.map succ xs)
    (Par.parallel_map ~pool:(Lazy.force pool1) succ xs)

let test_exception_propagation () =
  Alcotest.check_raises "lowest-index exception" (Failure "boom 37") (fun () ->
      ignore
        (Par.parallel_map ~pool:(Lazy.force pool4)
           (fun x ->
             if x = 37 || x = 101 then failwith (Printf.sprintf "boom %d" x) else x)
           (List.init 200 Fun.id)))

let test_exception_leaves_pool_usable () =
  let pool = Lazy.force pool4 in
  (try
     ignore (Par.parallel_map ~pool (fun _ -> failwith "die") (List.init 50 Fun.id))
   with Failure _ -> ());
  Alcotest.(check (list int))
    "pool survives" [ 2; 4; 6 ]
    (Par.parallel_map ~pool (fun x -> 2 * x) [ 1; 2; 3 ])

let test_pool_lifecycle () =
  let pool = Par.Pool.create ~oversubscribe:true ~jobs:3 () in
  check_int "jobs" 3 (Par.Pool.jobs pool);
  check_int "parallelism" 3 (Par.Pool.parallelism pool);
  Alcotest.(check (list int))
    "usable" [ 1; 4; 9; 16 ]
    (Par.parallel_map ~pool (fun x -> x * x) [ 1; 2; 3; 4 ]);
  Par.Pool.shutdown pool;
  Par.Pool.shutdown pool;
  (* Idempotent. *)
  Alcotest.check_raises "dead pool rejected"
    (Invalid_argument "Psm_par.Pool: pool is shut down") (fun () ->
      ignore (Par.parallel_map ~pool (fun x -> x) (List.init 10 Fun.id)))

let test_nested_calls () =
  (* Nested parallel calls from worker tasks run sequentially instead of
     deadlocking; the fan-out still returns correct ordered results. *)
  let outer = List.init 8 Fun.id in
  let expected =
    List.map (fun i -> List.fold_left ( + ) 0 (List.init 100 (fun j -> i + j))) outer
  in
  Alcotest.(check (list int))
    "nested" expected
    (Par.parallel_map ~pool:(Lazy.force pool4)
       (fun i ->
         List.fold_left ( + ) 0
           (Par.parallel_map ~pool:(Lazy.force pool4) (fun j -> i + j)
              (List.init 100 Fun.id)))
       outer)

let test_parallel_fold () =
  let xs = Array.init 1001 Fun.id in
  let sum =
    Par.parallel_fold ~pool:(Lazy.force pool4) ~chunk:7
      ~init:(fun () -> 0)
      ~fold:( + ) ~merge:( + ) xs
  in
  check_int "sum" (1000 * 1001 / 2) sum;
  let seq =
    Par.parallel_fold ~pool:(Lazy.force pool1)
      ~init:(fun () -> 0)
      ~fold:( + ) ~merge:( + ) xs
  in
  check_int "sequential path" sum seq

let test_default_jobs_env () =
  check_bool "positive" true (Par.default_jobs () >= 1);
  (* The global fan-outs never spawn more domains than the hardware
     offers, whatever PSM_JOBS asks for. *)
  check_bool "effective jobs clamped" true
    (Par.effective_jobs () <= Par.recommended_domains ())

let test_hardware_clamp () =
  (* An absurd jobs request keeps its accounting value but the pool only
     spawns what the machine can run without GC-barrier thrashing. *)
  let pool = Par.Pool.create ~jobs:64 () in
  check_int "jobs preserved" 64 (Par.Pool.jobs pool);
  check_bool "parallelism clamped" true
    (Par.Pool.parallelism pool <= Par.recommended_domains ());
  Alcotest.(check (list int))
    "usable" [ 2; 3; 4 ]
    (Par.parallel_map ~pool succ [ 1; 2; 3 ]);
  Par.Pool.shutdown pool

let test_weighted_map_order () =
  (* LPT scheduling reorders how tasks are CLAIMED, never where results
     land; adversarially skewed costs must not perturb output order. *)
  let xs = List.init 300 Fun.id in
  let cost x =
    if x mod 17 = 0 then 1e6 else if x mod 2 = 0 then 0.001 else float_of_int x
  in
  Alcotest.(check (list int))
    "ordered"
    (List.map (fun x -> x * 3) xs)
    (Par.parallel_map_weighted ~pool:(Lazy.force pool4) ~cost (fun x -> x * 3) xs)

let test_weighted_exception_lowest_index () =
  (* The deterministic-exception contract survives the schedule
     permutation: the lowest INPUT index wins, not the first claimed. *)
  Alcotest.check_raises "lowest-index exception" (Failure "boom 11") (fun () ->
      ignore
        (Par.parallel_map_weighted ~pool:(Lazy.force pool4)
           ~cost:(fun x -> float_of_int (1000 - x))
           (fun x ->
             if x = 11 || x = 180 then failwith (Printf.sprintf "boom %d" x) else x)
           (List.init 200 Fun.id)))

let test_nested_no_oversubscription () =
  (* A nested fan-out (Experiment.table* over IPs that themselves mine in
     parallel) must not run on more distinct domains than the hardware
     recommends: inner calls from workers take the sequential path and
     the pool itself is clamped. *)
  let pool = Par.Pool.create ~jobs:4 () in
  let mu = Mutex.create () in
  let seen = Hashtbl.create 8 in
  let note () =
    Mutex.lock mu;
    Hashtbl.replace seen (Domain.self () :> int) ();
    Mutex.unlock mu
  in
  let outer = List.init 8 Fun.id in
  let expected =
    List.map (fun i -> List.fold_left ( + ) 0 (List.init 50 (fun j -> i + j))) outer
  in
  let got =
    Par.parallel_map ~pool
      (fun i ->
        note ();
        List.fold_left ( + ) 0
          (Par.parallel_map ~pool
             (fun j ->
               note ();
               i + j)
             (List.init 50 Fun.id)))
      outer
  in
  Alcotest.(check (list int)) "nested results" expected got;
  check_bool "distinct domains within hardware budget" true
    (Hashtbl.length seen <= Par.recommended_domains ());
  Par.Pool.shutdown pool

(* ---------- determinism of the parallel mining paths ---------- *)

let arb_trace =
  let gen =
    QCheck.Gen.(
      let* n = int_range 80 220 in
      let iface =
        Interface.create
          [ Signal.input "a" 1; Signal.input "b" 4; Signal.input "c" 4;
            Signal.output "d" 4 ]
      in
      let* samples =
        list_size (return n)
          (map3
             (fun a b c ->
               [| Bits.of_bool a;
                  Bits.of_int ~width:4 (b land 15);
                  Bits.of_int ~width:4 (c land 15);
                  Bits.of_int ~width:4 ((b + c) land 15) |])
             bool (int_bound 40) (int_bound 9))
      in
      return (FT.of_samples iface (Array.of_list samples)))
  in
  QCheck.make gen

let lax_config =
  { Miner.default with
    Miner.min_support = 0.02;
    min_mean_run = 1.;
    max_short_run_fraction = 1.0 }

let prop name f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~count:25 ~name arb_trace f)

(* Adversarially skewed task costs: huge outliers, zeros, ties and a
   pathological all-equal tail. The weighted map must still agree with
   List.map elementwise. *)
let arb_weighted_tasks =
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 0 400)
        (pair (int_bound 1_000)
           (oneof
              [ float_range 0. 1e6; return 0.; return 1e12; return 1.;
                float_range 0. 1e-9 ])))

let scheduler_properties =
  [ QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:50 ~name:"weighted map = sequential on skewed costs"
         arb_weighted_tasks (fun tasks ->
           let costs = Array.of_list (List.map snd tasks) in
           let xs = List.map fst tasks in
           let f x = (x * 7) + 1 in
           Par.parallel_map_weighted ~pool:(Lazy.force pool4)
             ~cost:(fun x ->
               (* Cost looked up by value is ambiguous under duplicates —
                  index the list positionally instead. *)
               ignore x;
               0.)
             f xs
           = List.map f xs
           && Par.parallel_map_weighted ~pool:(Lazy.force pool4)
                ~cost:(fun (i, _) -> costs.(i))
                (fun (_, x) -> f x)
                (List.mapi (fun i x -> (i, x)) xs)
              = List.map f xs)) ]

let properties =
  [ prop "parallel mine_vocabulary = sequential" (fun trace ->
        let seq =
          Miner.mine_vocabulary ~pool:(Lazy.force pool1) ~config:lax_config [ trace ]
        in
        let par =
          Miner.mine_vocabulary ~pool:(Lazy.force pool4) ~config:lax_config [ trace ]
        in
        let a = Vocabulary.atoms seq and b = Vocabulary.atoms par in
        Array.length a = Array.length b
        && Array.for_all2 Atomic.equal a b);
    prop "parallel candidate_stats = sequential" (fun trace ->
        let strip (s : Miner.atom_stats) =
          (s.Miner.occurrences, s.Miner.runs, s.Miner.short_runs)
        in
        let seq =
          Miner.candidate_stats ~pool:(Lazy.force pool1) ~config:lax_config [ trace ]
        in
        let par =
          Miner.candidate_stats ~pool:(Lazy.force pool4) ~config:lax_config [ trace ]
        in
        List.length seq = List.length par
        && List.for_all2
             (fun x y -> Atomic.equal x.Miner.atom y.Miner.atom && strip x = strip y)
             seq par);
    prop "parallel classification = sequential" (fun trace ->
        let vocabulary =
          Miner.mine_vocabulary ~pool:(Lazy.force pool1) ~config:lax_config [ trace ]
        in
        if Vocabulary.size vocabulary = 0 then true
        else begin
          let t_seq = Table.create vocabulary in
          let g_seq = Prop_trace.of_functional ~pool:(Lazy.force pool1) t_seq trace in
          let t_par = Table.create vocabulary in
          let g_par = Prop_trace.of_functional ~pool:(Lazy.force pool4) t_par trace in
          Prop_trace.prop_ids g_seq = Prop_trace.prop_ids g_par
          && Table.prop_count t_seq = Table.prop_count t_par
          && List.for_all
               (fun id -> Table.row t_seq id = Table.row t_par id)
               (List.init (Table.prop_count t_seq) Fun.id)
        end) ]

let suite =
  ( "par",
    [ Alcotest.test_case "map order" `Quick test_map_order;
      Alcotest.test_case "map_array order" `Quick test_map_array_order;
      Alcotest.test_case "jobs=1 sequential" `Quick test_jobs1_equals_sequential;
      Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
      Alcotest.test_case "pool survives exception" `Quick test_exception_leaves_pool_usable;
      Alcotest.test_case "pool lifecycle" `Quick test_pool_lifecycle;
      Alcotest.test_case "nested calls" `Quick test_nested_calls;
      Alcotest.test_case "parallel fold" `Quick test_parallel_fold;
      Alcotest.test_case "default jobs" `Quick test_default_jobs_env;
      Alcotest.test_case "hardware clamp" `Quick test_hardware_clamp;
      Alcotest.test_case "weighted map order" `Quick test_weighted_map_order;
      Alcotest.test_case "weighted exception lowest-index" `Quick
        test_weighted_exception_lowest_index;
      Alcotest.test_case "nested fan-out stays within domain budget" `Quick
        test_nested_no_oversubscription ]
    @ scheduler_properties @ properties )
