(* Tests for the hierarchical-PSM extension (the paper's future work) and
   the baseline power models. *)

module Bits = Psm_bits.Bits
module Decomposed = Psm_ips.Decomposed
module Hier = Psm_flow.Hier
module Baselines = Psm_flow.Baselines
module Workloads = Psm_ips.Workloads
module FT = Psm_trace.Functional_trace
module PT = Psm_trace.Power_trace

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let camellia_suite () = Workloads.suite ~parts:3 ~total_length:15000 ~long:false "Camellia"

(* ---------- decomposed model ---------- *)

let test_decomposed_activity_sums_to_flat () =
  (* The decomposed Camellia's component activities must sum to the flat
     model's activity, cycle for cycle. *)
  let flat = Psm_ips.Camellia.create () in
  let d = Psm_ips.Camellia.create_decomposed () in
  let stim = Workloads.camellia_short ~length:500 () in
  flat.Psm_ips.Ip.reset ();
  d.Decomposed.reset ();
  Array.iteri
    (fun t pis ->
      let _, flat_activity = flat.Psm_ips.Ip.step pis in
      let _, parts = d.Decomposed.step pis in
      let summed = List.fold_left (fun acc (_, a) -> acc +. a) 0. parts in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "cycle %d" t) flat_activity summed)
    stim

let test_decomposed_outputs_match_flat () =
  let flat = Psm_ips.Camellia.create () in
  let d = Psm_ips.Camellia.create_decomposed () in
  let stim = Workloads.camellia_short ~length:300 () in
  flat.Psm_ips.Ip.reset ();
  d.Decomposed.reset ();
  Array.iter
    (fun pis ->
      let flat_out, _ = flat.Psm_ips.Ip.step pis in
      let dec_out, _ = d.Decomposed.step pis in
      check_bool "outputs equal" true
        (Array.for_all2 Bits.equal flat_out dec_out))
    stim

let test_decomposed_component_shapes () =
  let d = Psm_ips.Camellia.create_decomposed () in
  check_int "two components" 2 (List.length d.Decomposed.components);
  let names = List.map (fun c -> c.Decomposed.comp_name) d.Decomposed.components in
  Alcotest.(check (list string)) "names" [ "datapath"; "scrubber" ] names;
  (* Samples align with the declared interfaces. *)
  let stim = Workloads.camellia_short ~length:50 () in
  d.Decomposed.reset ();
  Array.iter
    (fun pis ->
      let _, parts = d.Decomposed.step pis in
      List.iter2
        (fun (c : Decomposed.component) (sample, activity) ->
          check_int
            (c.Decomposed.comp_name ^ " arity")
            (Psm_trace.Interface.arity c.Decomposed.comp_interface)
            (Array.length sample);
          check_bool "activity non-negative" true (activity >= 0.))
        d.Decomposed.components parts)
    stim

(* ---------- hierarchical capture/train/evaluate ---------- *)

let test_hier_capture_shapes () =
  let d = Psm_ips.Camellia.create_decomposed () in
  let stim = Workloads.camellia_short ~length:400 () in
  let pairs, total = Hier.capture d stim in
  check_int "two pairs" 2 (List.length pairs);
  check_int "total length" 400 (PT.length total);
  List.iter
    (fun (trace, power) ->
      check_int "lengths" 400 (FT.length trace);
      check_int "power lengths" 400 (PT.length power))
    pairs;
  (* Per-instant: component powers sum to the total. *)
  for t = 0 to 399 do
    let summed = List.fold_left (fun acc (_, p) -> acc +. PT.get p t) 0. pairs in
    Alcotest.(check (float 1e-18)) "sums" (PT.get total t) summed
  done

let test_hier_beats_flat_on_camellia () =
  (* The headline future-work claim: subcomponent visibility restores
     accuracy. *)
  let suite = camellia_suite () in
  let long = Workloads.camellia_long ~length:15000 () in
  let ip = Psm_ips.Camellia.create () in
  let flat = Psm_flow.Flow.train_on_ip ip suite in
  let flat_report, _ = Psm_flow.Flow.evaluate_on_ip flat ip long in
  let d = Psm_ips.Camellia.create_decomposed () in
  let hier = Hier.train d suite in
  let hier_report = Hier.evaluate hier d long in
  check_bool
    (Printf.sprintf "hier %.1f%% much better than flat %.1f%%"
       (100. *. hier_report.Psm_hmm.Accuracy.mre)
       (100. *. flat_report.Psm_hmm.Accuracy.mre))
    true
    (hier_report.Psm_hmm.Accuracy.mre < flat_report.Psm_hmm.Accuracy.mre /. 2.);
  check_bool "hier in single digits" true (hier_report.Psm_hmm.Accuracy.mre < 0.10)

let test_hier_part_per_component () =
  let d = Psm_ips.Camellia.create_decomposed () in
  let hier = Hier.train d (camellia_suite ()) in
  Alcotest.(check (list string)) "parts" [ "datapath"; "scrubber" ]
    (List.map fst hier.Hier.parts);
  check_bool "states counted" true (Hier.total_states hier >= 4)

(* ---------- baselines ---------- *)

let test_constant_baseline () =
  let p1 = PT.of_array [| 1.; 3. |] and p2 = PT.of_array [| 5. |] in
  let c = Baselines.Constant.train [ p1; p2 ] in
  Alcotest.(check (float 1e-9)) "mean" 3. (Baselines.Constant.power c);
  let report = Baselines.Constant.evaluate c ~reference:(PT.of_array [| 3.; 3. |]) in
  Alcotest.(check (float 1e-9)) "exact when constant" 0. report.Psm_hmm.Accuracy.mre

let test_two_state_baseline () =
  let iface =
    Psm_trace.Interface.create
      [ Psm_trace.Signal.input "en" 1; Psm_trace.Signal.output "q" 1 ]
  in
  let sample en = [| Bits.of_bool en; Bits.of_bool false |] in
  let trace =
    FT.of_samples iface [| sample false; sample true; sample true; sample false |]
  in
  let power = PT.of_array [| 1.; 10.; 12.; 3. |] in
  let t2 = Baselines.Two_state.train ~control:"en" [ (trace, power) ] in
  Alcotest.(check (float 1e-9)) "idle" 2. (Baselines.Two_state.idle_power t2);
  Alcotest.(check (float 1e-9)) "active" 11. (Baselines.Two_state.active_power t2);
  Alcotest.(check (array (float 1e-9))) "estimate" [| 2.; 11.; 11.; 2. |]
    (Baselines.Two_state.estimate t2 trace)

let test_mined_beats_baselines_on_ram () =
  let ip = Psm_ips.Ram.create () in
  let suite = Workloads.suite ~parts:3 ~total_length:12000 ~long:false "RAM" in
  let pairs = List.map (Psm_ips.Capture.run ip) suite in
  let constant = Baselines.Constant.train (List.map snd pairs) in
  let two_state = Baselines.Two_state.train ~control:"ce" pairs in
  let trained =
    Psm_flow.Flow.train ~traces:(List.map fst pairs) ~powers:(List.map snd pairs) ()
  in
  let long = Workloads.ram_long ~length:15000 () in
  let trace, reference = Psm_ips.Capture.run ip long in
  let c = Baselines.Constant.evaluate constant ~reference in
  let t2 = Baselines.Two_state.evaluate two_state trace ~reference in
  let mined, _ = Psm_flow.Flow.evaluate trained trace ~reference in
  check_bool "mined < two-state" true
    (mined.Psm_hmm.Accuracy.mre < t2.Psm_hmm.Accuracy.mre);
  check_bool "two-state < constant" true
    (t2.Psm_hmm.Accuracy.mre < c.Psm_hmm.Accuracy.mre)

let suite =
  ( "hier",
    [ Alcotest.test_case "activities sum to flat" `Quick test_decomposed_activity_sums_to_flat;
      Alcotest.test_case "outputs match flat" `Quick test_decomposed_outputs_match_flat;
      Alcotest.test_case "component shapes" `Quick test_decomposed_component_shapes;
      Alcotest.test_case "capture shapes" `Quick test_hier_capture_shapes;
      Alcotest.test_case "hier beats flat (Camellia)" `Slow test_hier_beats_flat_on_camellia;
      Alcotest.test_case "one part per component" `Slow test_hier_part_per_component;
      Alcotest.test_case "constant baseline" `Quick test_constant_baseline;
      Alcotest.test_case "two-state baseline" `Quick test_two_state_baseline;
      Alcotest.test_case "mined beats baselines" `Slow test_mined_beats_baselines_on_ram ] )
