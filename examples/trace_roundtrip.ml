(* Trace tooling: capture, export, re-import and analyse training traces.

   The methodology's inputs are plain traces, so interoperable trace I/O
   is part of the substrate: VCD (for waveform viewers) and CSV (for
   spreadsheets/pandas) with the power trace embedded in both. This
   example captures a MultSum training run, round-trips it through both
   formats, verifies losslessness, and prints the switching statistics a
   verification engineer would sanity-check before trusting the suite.

   Run with:  dune exec examples/trace_roundtrip.exe *)

module FT = Psm_trace.Functional_trace
module Vcd = Psm_trace.Vcd
module Csv = Psm_trace.Csv
module Stats = Psm_trace.Trace_stats

let () =
  let ip = Psm_ips.Multsum.create () in
  let stim = Psm_ips.Workloads.multsum_short ~length:3000 () in
  let trace, power = Psm_ips.Capture.run ip stim in
  Format.printf "Captured: %a@." FT.pp_summary trace;
  Format.printf "Reference: %a@.@." Psm_trace.Power_trace.pp_summary power;

  (* VCD round-trip. *)
  let vcd_path = Filename.temp_file "multsum" ".vcd" in
  Vcd.write_file ~power vcd_path trace;
  let parsed = Vcd.parse_file vcd_path in
  assert (FT.equal trace parsed.Vcd.trace);
  (match parsed.Vcd.power with
  | Some p ->
      assert (
        Array.for_all2
          (fun a b -> a = b)
          (Psm_trace.Power_trace.to_array power)
          (Psm_trace.Power_trace.to_array p))
  | None -> assert false);
  Printf.printf "VCD round-trip lossless: %s (%d bytes)\n" vcd_path
    (Unix.stat vcd_path).Unix.st_size;
  Format.printf "  ingestion: %a@." Psm_trace.Reader.pp_stats parsed.Vcd.stats;

  (* Foreign VCD: timestamp gaps and 4-state values. The parser holds
     values across the gaps (stride = GCD of the deltas = 5 here) and
     coerces the x under the default Count policy, reporting it in the
     stats instead of silently mis-sampling. *)
  let foreign =
    "$timescale 1ns $end\n\
     $var wire 4 ! data $end\n\
     $enddefinitions $end\n\
     #0 b1x01 !\n\
     #5 b111 !\n\
     #20 b0 !\n"
  in
  let p = Vcd.parse foreign in
  assert (FT.length p.Vcd.trace = 5) (* #0 #5 (#10 #15 held) #20 *);
  assert (p.Vcd.stats.Psm_trace.Reader.unknowns_coerced = 1);
  Format.printf "Foreign VCD with gaps + x bits: %d instants, %a@.@."
    (FT.length p.Vcd.trace) Psm_trace.Reader.pp_stats p.Vcd.stats;

  (* CSV round-trip. *)
  let csv_path = Filename.temp_file "multsum" ".csv" in
  Csv.write_file ~power csv_path trace;
  let trace', power' = Csv.parse_file csv_path in
  assert (FT.equal trace trace');
  assert (power' <> None);
  Printf.printf "CSV round-trip lossless: %s (%d bytes)\n\n" csv_path
    (Unix.stat csv_path).Unix.st_size;

  (* Workload sanity statistics. *)
  Format.printf "%a@." Stats.pp_report trace;

  (* Cross-check: a trace imported from VCD trains the same PSM as the
     original capture — the flow is format-agnostic. *)
  let train t =
    Psm_flow.Flow.train ~traces:[ t ] ~powers:[ power ] ()
  in
  let a = train trace and b = train parsed.Vcd.trace in
  Printf.printf "PSMs from original vs re-imported trace: %d vs %d states (equal: %b)\n"
    (Psm_core.Psm.state_count a.Psm_flow.Flow.optimized)
    (Psm_core.Psm.state_count b.Psm_flow.Flow.optimized)
    (Psm_core.Psm.state_count a.Psm_flow.Flow.optimized
    = Psm_core.Psm.state_count b.Psm_flow.Flow.optimized);
  Sys.remove vcd_path;
  Sys.remove csv_path
