(* Quickstart: the whole methodology on a ten-line example.

   We hand-build a functional trace and a power trace for an imaginary
   two-mode accelerator, mine its temporal assertions, generate the PSM,
   and replay it — everything the paper's Fig. 1 pipeline does, visible in
   one screenful.

   Run with:  dune exec examples/quickstart.exe *)

module Bits = Psm_bits.Bits
module Signal = Psm_trace.Signal
module Interface = Psm_trace.Interface
module FT = Psm_trace.Functional_trace
module PT = Psm_trace.Power_trace

let () =
  (* 1. The design under analysis: one enable input, one busy output. *)
  let iface = Interface.create [ Signal.input "en" 1; Signal.output "busy" 1 ] in
  let sample en busy = [| Bits.of_bool en; Bits.of_bool busy |] in
  (* A little scenario: idle, a 4-cycle job, idle, a 6-cycle job, idle. *)
  let functional =
    FT.of_samples iface
      [| sample false false; sample false false; sample false false;
         sample true true; sample true true; sample true true; sample true true;
         sample false false; sample false false;
         sample true true; sample true true; sample true true;
         sample true true; sample true true; sample true true;
         sample false false; sample false false |]
  in
  (* The reference power trace: ~1 µJ idle, ~20 µJ busy (per cycle). *)
  let power =
    PT.of_array
      (Array.init (FT.length functional) (fun t ->
           if Bits.get (FT.value functional ~time:t ~signal:0) 0 then 20e-6 else 1e-6))
  in

  (* 2. Mine the atomic-proposition vocabulary and the proposition trace. *)
  let config =
    { Psm_mining.Miner.default with
      Psm_mining.Miner.min_support = 0.05;
      min_mean_run = 2.0 }
  in
  let vocabulary = Psm_mining.Miner.mine_vocabulary ~config [ functional ] in
  Format.printf "%a@." Psm_mining.Vocabulary.pp vocabulary;
  let table = Psm_mining.Prop_trace.Table.create vocabulary in
  let gamma = Psm_mining.Prop_trace.of_functional table functional in
  Format.printf "%a@." Psm_mining.Prop_trace.pp gamma;

  (* 3. Generate the PSM chain (the XU automaton working under the hood),
        then simplify and join it into a compact machine. *)
  let chain = Psm_core.Generator.generate (Psm_core.Psm.empty table) ~trace:0 gamma power in
  Format.printf "Generated chain:@.%a@." Psm_core.Psm.pp chain;
  let combined = Psm_core.Join.join (Psm_core.Simplify.simplify chain) in
  Format.printf "After simplify + join:@.%a@." Psm_core.Psm.pp combined;

  (* 4. Simulate it back over the trace through the HMM and score it. *)
  let hmm = Psm_hmm.Hmm.build combined in
  let result = Psm_hmm.Multi_sim.simulate hmm functional in
  let report = Psm_hmm.Accuracy.of_result ~reference:power result in
  Format.printf "Replay accuracy: %a@." Psm_hmm.Accuracy.pp report;

  (* 5. Export Graphviz for the README. *)
  print_string (Psm_core.Dot.to_string ~name:"quickstart" combined)
