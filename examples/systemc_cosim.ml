(* Discrete-event co-simulation — the paper's deployment shape.

   The original work ships its PSMs as a SystemC module that runs
   concurrently with the IP's functional model inside one event-driven
   simulation. This example reconstructs that setup on the bundled
   discrete-event kernel: a clock, a testbench process driving the RAM's
   input signals, the RAM model sampling on rising edges, and the PSM
   power monitor listening on an analysis port — then verifies that the
   event-driven run produces bit-identical power estimates to the direct
   lockstep co-simulation.

   Run with:  dune exec examples/systemc_cosim.exe *)

module Kernel = Psm_sysc.Kernel
module Cosim = Psm_sysc.Cosim
module Workloads = Psm_ips.Workloads

let () =
  (* Train the RAM PSMs once. *)
  Printf.printf "Training RAM PSMs...\n%!";
  let ip = Psm_ips.Ram.create () in
  let suite = Workloads.suite ~total_length:34130 ~long:false "RAM" in
  let trained = Psm_flow.Flow.train_on_ip ip suite in

  (* Elaborate the event-driven testbench: 10-tick clock, 20k cycles. *)
  let cycles = 20_000 in
  let stimulus = Workloads.ram_long ~length:cycles () in
  let kernel = Kernel.create () in
  let clock = Kernel.Clock.create kernel ~period:10 () in
  let des_ip = Psm_ips.Ram.create () in
  let cosim =
    Cosim.build kernel ~clock ~ip:des_ip ~hmm:trained.Psm_flow.Flow.hmm ~stimulus
  in
  Printf.printf "Elaborated: %d PI signals, %d PO signals, clock period 10.\n"
    (List.length (Cosim.pi_signals cosim))
    (List.length (Cosim.po_signals cosim));

  (* Run the event-driven simulation. *)
  let t0 = Unix.gettimeofday () in
  Kernel.run kernel ~until:(10 * (cycles + 1));
  let des_seconds = Unix.gettimeofday () -. t0 in
  Printf.printf "Event-driven run: %d cycles, %d delta cycles, %.2f s\n"
    (Cosim.cycles_done cosim) (Kernel.delta_count kernel) des_seconds;

  (* The per-cycle PSM estimate lives on a plain signal any other module
     could observe — a power manager, a thermal model, a logger. *)
  Printf.printf "Final power-estimate signal: %.4g J/cycle\n"
    (Kernel.Signal.read (Cosim.power_estimate cosim));

  (* Cross-check against the direct lockstep co-simulation. *)
  let trace, reference = Psm_ips.Capture.run ip stimulus in
  let direct = Psm_hmm.Multi_sim.simulate trained.Psm_flow.Flow.hmm trace in
  let des = Cosim.estimates cosim in
  let identical =
    Array.for_all2 (fun a b -> a = b) direct.Psm_hmm.Multi_sim.estimate des
  in
  Printf.printf "Event-driven estimates identical to lockstep: %b\n" identical;
  let report =
    Psm_hmm.Accuracy.of_estimate ~reference ~estimate:des
      ~wsp:direct.Psm_hmm.Multi_sim.wsp
  in
  Format.printf "Accuracy vs reference power: %a@." Psm_hmm.Accuracy.pp report
