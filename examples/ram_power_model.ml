(* Building a production power model for the RAM IP.

   This is the full paper flow on a real (simulated) IP: capture training
   traces with the reference power simulator, mine the PSMs, inspect the
   data-dependent-state regression, evaluate on an unseen workload, and
   write the artifacts a user would check into their repository (Graphviz
   dot of the machine, a VCD with the power estimate).

   Run with:  dune exec examples/ram_power_model.exe *)

module Flow = Psm_flow.Flow
module Workloads = Psm_ips.Workloads
module Psm = Psm_core.Psm
module Table = Psm_mining.Prop_trace.Table

let () =
  let ip = Psm_ips.Ram.create () in

  (* Training: the functional-verification suite (4 testbenches). *)
  Printf.printf "Training on the RAM verification suite...\n%!";
  let suite = Workloads.suite ~total_length:34130 ~long:false "RAM" in
  let trained = Flow.train_on_ip ip suite in
  let psm = trained.Flow.optimized in
  Format.printf "%a@." Psm.pp psm;

  (* The mined propositions, in the paper's Fig. 3 notation. *)
  Printf.printf "\nMined propositions:\n";
  let table = trained.Flow.table in
  for p = 0 to Table.prop_count table - 1 do
    Format.printf "  %a@." (Table.pp_prop table) p
  done;

  (* Which states were upgraded to regression outputs, and why. *)
  Printf.printf "\nData-dependent-state analysis:\n";
  List.iter
    (fun r ->
      Printf.printf "  state %d: sigma/mu = %.1f%%, correlation r = %.3f -> %s\n"
        r.Psm_core.Optimize.state_id
        (100. *. r.Psm_core.Optimize.relative_sigma)
        r.Psm_core.Optimize.correlation
        (if r.Psm_core.Optimize.upgraded then "regression output" else "kept constant");
      ())
    trained.Flow.optimize_reports;

  (* Evaluation on an unseen long workload. *)
  let long = Workloads.ram_long ~length:100_000 () in
  let report, result = Flow.evaluate_on_ip trained ip long in
  Format.printf "@.Accuracy on 100k unseen instants: %a@." Psm_hmm.Accuracy.pp report;
  Printf.printf "Resynchronization events: %d\n" result.Psm_hmm.Multi_sim.resync_events;

  (* Artifacts. *)
  let dot_path = Filename.temp_file "ram_psm" ".dot" in
  Psm_core.Dot.write_file ~name:"ram" dot_path psm;
  Printf.printf "\nWrote %s (render with: dot -Tsvg %s)\n" dot_path dot_path;
  let trace, power = Psm_ips.Capture.run ip (Workloads.ram_short ~length:2000 ()) in
  let vcd_path = Filename.temp_file "ram_trace" ".vcd" in
  Psm_trace.Vcd.write_file ~power vcd_path trace;
  Printf.printf "Wrote %s (open with gtkwave)\n" vcd_path
