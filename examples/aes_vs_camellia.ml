(* Why AES works and Camellia does not — the paper's key negative result,
   reproduced and explained.

   Both IPs are block ciphers with (almost) the same interface. AES's
   power model tracks its PSM within ~3% while Camellia's misses by ~30%.
   The difference is not magnitude but CORRELATION STRUCTURE: Camellia
   contains a second subcomponent (a key-schedule scrubber) whose
   switching is invisible at the primary inputs and outputs, so neither
   constant-power states nor the Hamming-distance regression can explain
   the per-cycle variance. Disabling the scrubber (and spending the same
   average power as a constant) restores AES-grade accuracy.

   Run with:  dune exec examples/aes_vs_camellia.exe *)

module Flow = Psm_flow.Flow
module Workloads = Psm_ips.Workloads
module Psm = Psm_core.Psm
module Power_attr = Psm_core.Power_attr

let analyse name make =
  let ip = make () in
  let suite = Workloads.suite ~total_length:16000 ~long:false name in
  let trained = Flow.train_on_ip ip suite in
  let long = Workloads.long_for ~length:60_000 name in
  let report, _ = Flow.evaluate_on_ip trained ip long in
  (trained, report)

let per_state_variance trained =
  Psm.states trained.Flow.optimized
  |> List.map (fun (s : Psm.state) ->
         (s.Psm.id, s.Psm.attr.Power_attr.n, Power_attr.relative_sigma s.Psm.attr))

let print_side name trained (report : Psm_hmm.Accuracy.report) =
  Printf.printf "\n--- %s ---\n" name;
  Printf.printf "states: %d   transitions: %d\n"
    (Psm.state_count trained.Flow.optimized)
    (Psm.transition_count trained.Flow.optimized);
  Printf.printf "per-state relative sigma (power variance a constant cannot express):\n";
  List.iter
    (fun (id, n, rel) ->
      if n > 20 then Printf.printf "  state %-5d n=%-7d sigma/mu = %5.1f%%\n" id n (100. *. rel))
    (per_state_variance trained);
  Printf.printf "regression candidates:\n";
  List.iter
    (fun r ->
      Printf.printf "  state %-5d correlation with input switching r = %+.3f -> %s\n"
        r.Psm_core.Optimize.state_id r.Psm_core.Optimize.correlation
        (if r.Psm_core.Optimize.upgraded then "UPGRADED" else "rejected"))
    trained.Flow.optimize_reports;
  Format.printf "long-TS accuracy: %a@." Psm_hmm.Accuracy.pp report

let () =
  let aes_trained, aes_report = analyse "AES" Psm_ips.Aes.create in
  print_side "AES" aes_trained aes_report;
  let cam_trained, cam_report = analyse "Camellia" Psm_ips.Camellia.create in
  print_side "Camellia" cam_trained cam_report;
  let fixed_trained, fixed_report =
    analyse "Camellia" Psm_ips.Camellia.create_without_scrubber
  in
  print_side "Camellia without the hidden scrubber (ablation)" fixed_trained fixed_report;
  Printf.printf
    "\nConclusion: AES MRE %.1f%%, Camellia MRE %.1f%%, Camellia-without-\n\
     scrubber MRE %.1f%%. The hidden subcomponent's uncorrelated activity —\n\
     not the IP's size or its interface — is what breaks the PSM, exactly\n\
     as the paper argues in its concluding remarks.\n"
    (100. *. aes_report.Psm_hmm.Accuracy.mre)
    (100. *. cam_report.Psm_hmm.Accuracy.mre)
    (100. *. fixed_report.Psm_hmm.Accuracy.mre)
