(* Dynamic power management exploration — the paper's motivating use case.

   The PSMs exist so that a system architect can explore power-management
   policies at the virtual-prototype level, long before gate-level power
   numbers exist and ~100x faster than a gate-level power simulator. Here
   we train a PSM set for the AES core once, then use it to compare three
   power-management policies for a bursty traffic profile:

     always-on     keep the core enabled between jobs,
     clock-gate    drop [enable] whenever the queue is empty,
     batch         accumulate jobs and run them back to back.

   The PSM answers "how much energy does each policy cost?" from the
   interface activity alone — no reference power model in the loop.

   Run with:  dune exec examples/dpm_explorer.exe *)

module Bits = Psm_bits.Bits
module Flow = Psm_flow.Flow
module Workloads = Psm_ips.Workloads
module Multi_sim = Psm_hmm.Multi_sim
module Prng = Psm_stats.Prng

let block ~key ~data ~decrypt =
  (* One AES block: start cycle + 10 rounds, buses held. *)
  Array.init 11 (fun i ->
      [| key; data; Bits.of_bool (i = 0); Bits.of_bool decrypt; Bits.of_bool true;
         Bits.of_bool false |])

let idle ~enable n =
  Array.init n (fun _ ->
      [| Bits.zero 128; Bits.zero 128; Bits.of_bool false; Bits.of_bool false;
         Bits.of_bool enable; Bits.of_bool false |])

(* A traffic profile: job arrivals with bursty gaps (deterministic). *)
let arrivals rng n = List.init n (fun _ -> 5 + Prng.int rng 200)

type policy = Always_on | Clock_gate | Batch of int

let stimulus_of_policy policy jobs rng =
  let chunks = ref [] in
  let emit a = chunks := a :: !chunks in
  let pending = ref 0 in
  let run_job () =
    emit (block ~key:(Prng.bits rng ~width:128) ~data:(Prng.bits rng ~width:128) ~decrypt:false)
  in
  List.iter
    (fun gap ->
      (match policy with
      | Always_on ->
          run_job ();
          emit (idle ~enable:true gap)
      | Clock_gate ->
          run_job ();
          emit (idle ~enable:false gap)
      | Batch k ->
          incr pending;
          if !pending >= k then begin
            for _ = 1 to !pending do run_job () done;
            pending := 0
          end;
          emit (idle ~enable:false gap)))
    jobs;
  (match policy with
  | Batch _ when !pending > 0 -> for _ = 1 to !pending do run_job () done
  | _ -> ());
  Array.concat (List.rev !chunks)

let () =
  Printf.printf "Training the AES power model once...\n%!";
  let ip = Psm_ips.Aes.create () in
  let suite = Workloads.suite ~total_length:16504 ~long:false "AES" in
  let trained = Flow.train_on_ip ip suite in
  Printf.printf "PSM: %d states, %d transitions\n\n"
    (Psm_core.Psm.state_count trained.Flow.optimized)
    (Psm_core.Psm.transition_count trained.Flow.optimized);

  let jobs = arrivals (Prng.create ~seed:77L) 400 in
  Printf.printf "%-12s %10s %14s %14s %10s\n" "policy" "cycles" "PSM energy(J)" "true energy(J)"
    "PSM err";
  List.iter
    (fun (name, policy) ->
      let stim = stimulus_of_policy policy jobs (Prng.create ~seed:99L) in
      (* The PSM-side estimate: step the IP functionally (cheap) and let
         the PSM produce power; compare with the reference power model
         (which a real user would NOT have). *)
      let trace, reference = Psm_ips.Capture.run ip stim in
      let result = Multi_sim.simulate trained.Flow.hmm trace in
      let estimate = Array.fold_left ( +. ) 0. result.Multi_sim.estimate in
      let truth = Psm_trace.Power_trace.total_energy reference in
      Printf.printf "%-12s %10d %14.4g %14.4g %9.2f%%\n" name (Array.length stim) estimate
        truth
        (100. *. abs_float (estimate -. truth) /. truth))
    [ ("always-on", Always_on); ("clock-gate", Clock_gate); ("batch-4", Batch 4) ];
  Printf.printf
    "\nThe PSM ranks the policies correctly and estimates the savings within a\n\
     few percent, without touching the reference power model.\n"
