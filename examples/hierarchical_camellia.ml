(* Hierarchical PSMs — the paper's future work, end to end.

   The paper closes: "To mitigate the limitation highlighted by Camellia,
   we foresee, as future works, the automatic generation of a power model
   based on hierarchical PSMs that distinguishes among IP subcomponents."

   This example runs that proposal: Camellia is decomposed into its Feistel
   datapath (observed at the top-level PIs/POs, as before) and its
   always-on key-schedule scrubber (observed at its own internal boundary,
   a 4-bit utilization level). One PSM set is mined per subcomponent; the
   simulated power is the sum. The flat model's ~33% MRE collapses to
   single digits — without touching the mining flow at all: the same
   algorithms, given visibility at the right boundaries.

   Run with:  dune exec examples/hierarchical_camellia.exe *)

module Workloads = Psm_ips.Workloads
module Hier = Psm_flow.Hier
module Psm = Psm_core.Psm

let () =
  let suite = Workloads.suite ~total_length:78004 ~long:false "Camellia" in
  let long = Workloads.camellia_long ~length:100_000 () in

  Printf.printf "Flat flow (the paper's Table II/III result)...\n%!";
  let ip = Psm_ips.Camellia.create () in
  let flat = Psm_flow.Flow.train_on_ip ip suite in
  let flat_report, _ = Psm_flow.Flow.evaluate_on_ip flat ip long in
  Format.printf "  %d states, %a@."
    (Psm.state_count flat.Psm_flow.Flow.optimized)
    Psm_hmm.Accuracy.pp flat_report;

  Printf.printf "\nHierarchical flow (one PSM set per subcomponent)...\n%!";
  let d = Psm_ips.Camellia.create_decomposed () in
  let hier = Hier.train d suite in
  List.iter
    (fun (name, part) ->
      Printf.printf "  %-9s %d states, %d transitions\n" name
        (Psm.state_count part.Psm_flow.Flow.optimized)
        (Psm.transition_count part.Psm_flow.Flow.optimized))
    hier.Hier.parts;
  let hier_report = Hier.evaluate hier d long in
  Format.printf "  combined: %a@." Psm_hmm.Accuracy.pp hier_report;

  Printf.printf
    "\nMRE %.1f%% (flat) -> %.1f%% (hierarchical): the inaccuracy was never\n\
     in the method; it was in the observation boundary.\n"
    (100. *. flat_report.Psm_hmm.Accuracy.mre)
    (100. *. hier_report.Psm_hmm.Accuracy.mre)
